"""Bag-of-words tf-idf vectors and cosine similarity.

The on-the-fly and collective baselines (Sec. 5.1.3) score *context
similarity* between the words around an entity mention and the entity's
description page in the knowledgebase.  This module provides the small
vector-space machinery they share.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, Iterable, List, Mapping


def cosine(a: Mapping[str, float], b: Mapping[str, float]) -> float:
    """Cosine similarity between two sparse vectors given as dicts.

    Returns 0.0 when either vector is empty (short tweets routinely produce
    empty contexts — the baselines must degrade gracefully, Sec. 1.1).
    """
    if not a or not b:
        return 0.0
    if len(b) < len(a):
        a, b = b, a
    dot = sum(weight * b.get(term, 0.0) for term, weight in a.items())
    if dot == 0.0:
        return 0.0
    norm_a = math.sqrt(sum(w * w for w in a.values()))
    norm_b = math.sqrt(sum(w * w for w in b.values()))
    return dot / (norm_a * norm_b)


class TfIdfVectorizer:
    """Fits idf weights on a corpus of token lists and vectorizes documents.

    The corpus is typically the set of entity description pages; query-time
    documents (tweet contexts) are vectorized with the fitted idf table, with
    unseen terms receiving the maximum idf (they are maximally surprising).
    """

    def __init__(self) -> None:
        self._idf: Dict[str, float] = {}
        self._max_idf: float = 0.0
        self._fitted = False

    @property
    def vocabulary_size(self) -> int:
        """Number of terms with a fitted idf weight."""
        return len(self._idf)

    def fit(self, documents: Iterable[List[str]]) -> "TfIdfVectorizer":
        """Learn idf weights: ``idf(t) = log((1 + N) / (1 + df(t))) + 1``."""
        df: Counter = Counter()
        n_docs = 0
        for tokens in documents:
            n_docs += 1
            df.update(set(tokens))
        self._idf = {
            term: math.log((1 + n_docs) / (1 + count)) + 1.0
            for term, count in df.items()
        }
        self._max_idf = math.log(1 + n_docs) + 1.0 if n_docs else 1.0
        self._fitted = True
        return self

    def vectorize(self, tokens: List[str]) -> Dict[str, float]:
        """Return the tf-idf vector of ``tokens`` as a sparse dict."""
        if not self._fitted:
            raise ValueError("TfIdfVectorizer.vectorize called before fit()")
        counts = Counter(tokens)
        total = sum(counts.values())
        if total == 0:
            return {}
        return {
            term: (count / total) * self._idf.get(term, self._max_idf)
            for term, count in counts.items()
        }

    def similarity(self, tokens_a: List[str], tokens_b: List[str]) -> float:
        """Cosine similarity between the tf-idf vectors of two documents."""
        return cosine(self.vectorize(tokens_a), self.vectorize(tokens_b))


class CosineSimilarity:
    """Pre-vectorized cosine similarity against a fixed document collection.

    Caches the tf-idf vector of each reference document (entity description)
    so scoring a tweet context against many candidates does not re-vectorize
    the candidate side each time.
    """

    def __init__(self, vectorizer: TfIdfVectorizer) -> None:
        self._vectorizer = vectorizer
        self._cache: Dict[int, Dict[str, float]] = {}

    def add_document(self, key: int, tokens: List[str]) -> None:
        """Register reference document ``key`` with its token list."""
        self._cache[key] = self._vectorizer.vectorize(tokens)

    def score(self, key: int, query_tokens: List[str]) -> float:
        """Similarity between document ``key`` and a query token list."""
        reference = self._cache.get(key)
        if reference is None:
            return 0.0
        return cosine(self._vectorizer.vectorize(query_tokens), reference)
