"""Serving front end: tenants, admission, dispatch, typed error bodies.

Everything except the final smoke test drives the transport-independent
:class:`~repro.serve.handlers.ServeApp` under a
:class:`~repro.testing.faults.FakeClock`, so rate-limit and breaker
behaviour is exact.  The smoke test binds a real
:class:`~repro.serve.server.ReproHTTPServer` on an ephemeral port to
prove the stdlib transport serializes the same bodies — including the
``internal`` body for a non-taxonomy bug planted via monkeypatching.
"""

import json

import pytest

from repro.errors import (
    BadRequestError,
    IndexUnavailableError,
    NotFoundError,
    OverloadedError,
    RateLimitedError,
    ReproError,
    ServeError,
    UnknownTenantError,
)
from repro.obs.metrics import validate_metrics_document
from repro.serve.admission import AdmissionController
from repro.serve.handlers import ServeApp, error_body
from repro.serve.tenants import TenantSpec, TokenBucket, build_tenant_registry
from repro.testing.faults import FakeClock


# ---------------------------------------------------------------------- #
# token bucket
# ---------------------------------------------------------------------- #
class TestTokenBucket:
    def test_burst_then_empty(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, capacity=3.0, clock=clock)
        assert [bucket.try_acquire() for _ in range(4)] == [True, True, True, False]

    def test_refills_at_rate(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, capacity=2.0, clock=clock)
        bucket.try_acquire()
        bucket.try_acquire()
        assert not bucket.try_acquire()
        clock.advance(0.5)  # 1 token back at 2/s
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_retry_after_is_exact_under_fake_clock(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=4.0, capacity=1.0, clock=clock)
        bucket.try_acquire()
        assert bucket.retry_after() == pytest.approx(0.25)

    def test_never_exceeds_capacity(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100.0, capacity=2.0, clock=clock)
        clock.advance(1000.0)
        assert bucket.snapshot()["tokens"] == 2.0

    @pytest.mark.parametrize("rate,capacity", [(0.0, 1.0), (-1.0, 1.0), (1.0, 0.0)])
    def test_invalid_parameters_rejected(self, rate, capacity):
        with pytest.raises(ValueError):
            TokenBucket(rate=rate, capacity=capacity)


# ---------------------------------------------------------------------- #
# admission controller
# ---------------------------------------------------------------------- #
class TestAdmissionController:
    def test_sheds_beyond_capacity_plus_queue(self):
        admission = AdmissionController(capacity=2, queue_limit=1)
        for _ in range(3):
            admission.admit()
        with pytest.raises(OverloadedError) as excinfo:
            admission.admit()
        assert excinfo.value.kind == "shed"
        assert excinfo.value.status == 503
        assert admission.snapshot()["shed"] == 1

    def test_release_reopens_admission(self):
        admission = AdmissionController(capacity=1, queue_limit=0)
        admission.admit()
        with pytest.raises(OverloadedError):
            admission.admit()
        admission.release()
        admission.admit()  # does not raise
        assert admission.snapshot()["admitted"] == 2

    def test_release_without_admit_is_a_bug(self):
        with pytest.raises(ValueError):
            AdmissionController().release()

    def test_peak_pending_tracks_high_water_mark(self):
        admission = AdmissionController(capacity=4, queue_limit=0)
        for _ in range(3):
            admission.admit()
        admission.release()
        admission.release()
        snap = admission.snapshot()
        assert snap["pending"] == 1
        assert snap["peak_pending"] == 3

    @pytest.mark.parametrize("capacity,queue_limit", [(0, 1), (1, -1)])
    def test_invalid_parameters_rejected(self, capacity, queue_limit):
        with pytest.raises(ValueError):
            AdmissionController(capacity=capacity, queue_limit=queue_limit)


# ---------------------------------------------------------------------- #
# error bodies
# ---------------------------------------------------------------------- #
class TestErrorBodies:
    @pytest.mark.parametrize(
        "error,status,kind",
        [
            (BadRequestError("x"), 400, "bad_request"),
            (UnknownTenantError("x"), 404, "unknown_tenant"),
            (NotFoundError("x"), 404, "not_found"),
            (RateLimitedError("x", retry_after_s=1.5), 429, "rate_limited"),
            (OverloadedError("x"), 503, "shed"),
            (IndexUnavailableError("x"), 503, "unavailable"),
            (ReproError("x"), 503, "unavailable"),
        ],
    )
    def test_every_taxonomy_error_renders_typed(self, error, status, kind):
        got_status, body = error_body(error)
        assert got_status == status
        assert body["schema_version"] == 1
        assert body["error"]["type"] == kind
        assert body["error"]["status"] == status
        assert isinstance(body["error"]["message"], str)

    def test_rate_limited_carries_retry_after(self):
        _, body = error_body(RateLimitedError("slow down", retry_after_s=0.75))
        assert body["error"]["retry_after_s"] == 0.75

    def test_serve_errors_are_repro_errors(self):
        for exc in (
            ServeError, BadRequestError, UnknownTenantError, NotFoundError,
            RateLimitedError, OverloadedError,
        ):
            assert issubclass(exc, ReproError)


# ---------------------------------------------------------------------- #
# app dispatch over a real (small) world
# ---------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def served(small_world):
    clock = FakeClock()
    registry, context = build_tenant_registry(
        small_world,
        [TenantSpec(name="alpha", rate=10.0, burst=5.0, deadline_ms=None),
         TenantSpec(name="beta", rate=10.0, burst=5.0, deadline_ms=None)],
        clock=clock,
    )
    app = ServeApp(
        registry,
        admission=AdmissionController(capacity=2, queue_limit=1),
        clock=clock,
    )
    mention = next(
        (tweet, m)
        for tweet in context.test_dataset.tweets
        for m in tweet.mentions
    )
    return app, clock, mention


def _link_body(tenant, surface, user, now, **extra):
    payload = {"tenant": tenant, "surface": surface, "user": user, "now": now}
    payload.update(extra)
    return json.dumps(payload).encode()


class TestServeApp:
    def _fresh_bucket(self, app, clock):
        # module-scoped fixture: refill every tenant bucket between tests
        clock.advance(10.0)

    def test_link_happy_path_schema(self, served):
        app, clock, (tweet, mention) = served
        self._fresh_bucket(app, clock)
        status, doc = app.handle(
            "POST", "/v1/link",
            _link_body("alpha", mention.surface, tweet.user, tweet.timestamp),
        )
        assert status == 200
        assert doc["schema_version"] == 1
        assert doc["tenant"] == "alpha"
        assert doc["outcome"] in ("ok", "abstained", "degraded")
        assert doc["degradation"] is None
        for candidate in doc["candidates"]:
            assert set(candidate) == {"entity", "score"}

    @pytest.mark.parametrize(
        "body,expected_kind",
        [
            (None, "bad_request"),
            (b"", "bad_request"),
            (b"{not json", "bad_request"),
            (b'"just a string"', "bad_request"),
            (b'{"surface": "x", "user": 1}', "bad_request"),  # no tenant
            (b'{"tenant": "alpha", "user": 1}', "bad_request"),  # no surface
            (b'{"tenant": "alpha", "surface": " ", "user": 1}', "bad_request"),
            (b'{"tenant": "alpha", "surface": "x"}', "bad_request"),  # no user
            (b'{"tenant": "alpha", "surface": "x", "user": "seven"}',
             "bad_request"),
            (b'{"tenant": "alpha", "surface": "x", "user": 1, "now": "nope"}',
             "bad_request"),
            (b'{"tenant": "ghost", "surface": "x", "user": 1}', "unknown_tenant"),
        ],
    )
    def test_malformed_requests_get_typed_bodies(self, served, body, expected_kind):
        app, clock, _ = served
        self._fresh_bucket(app, clock)
        status, doc = app.handle("POST", "/v1/link", body)
        assert status in (400, 404)
        assert doc["error"]["type"] == expected_kind

    def test_out_of_universe_user_is_bad_request(self, served):
        app, clock, (tweet, mention) = served
        self._fresh_bucket(app, clock)
        status, doc = app.handle(
            "POST", "/v1/link",
            _link_body("alpha", mention.surface, 10**9, tweet.timestamp),
        )
        assert (status, doc["error"]["type"]) == (400, "bad_request")

    def test_non_finite_now_is_bad_request(self, served):
        app, clock, (tweet, mention) = served
        self._fresh_bucket(app, clock)
        status, doc = app.handle(
            "POST", "/v1/link",
            json.dumps({"tenant": "alpha", "surface": mention.surface,
                        "user": tweet.user, "now": 1e999}).encode(),
        )
        assert (status, doc["error"]["type"]) == (400, "bad_request")

    def test_unknown_route_is_not_found(self, served):
        app, clock, _ = served
        status, doc = app.handle("GET", "/v2/nope", None)
        assert (status, doc["error"]["type"]) == (404, "not_found")

    def test_rate_limit_exhausts_to_429_with_retry_hint(self, served):
        app, clock, (tweet, mention) = served
        self._fresh_bucket(app, clock)
        body = _link_body("beta", mention.surface, tweet.user, tweet.timestamp)
        statuses = [app.handle("POST", "/v1/link", body)[0] for _ in range(6)]
        assert statuses[:5] == [200] * 5  # burst capacity
        assert statuses[5] == 429
        status, doc = app.handle("POST", "/v1/link", body)
        assert doc["error"]["type"] == "rate_limited"
        assert doc["error"]["retry_after_s"] > 0

    def test_full_queue_sheds_503(self, served):
        app, clock, (tweet, mention) = served
        self._fresh_bucket(app, clock)
        for _ in range(3):  # capacity 2 + queue 1
            app.admission.admit()
        try:
            status, doc = app.handle(
                "POST", "/v1/link",
                _link_body("alpha", mention.surface, tweet.user, tweet.timestamp),
            )
        finally:
            for _ in range(3):
                app.admission.release()
        assert (status, doc["error"]["type"]) == (503, "shed")

    def test_healthz_exposes_tenant_and_breaker_state(self, served):
        app, clock, _ = served
        status, doc = app.handle("GET", "/healthz", None)
        assert status == 200
        assert doc["status"] == "ok"
        assert set(doc["admission"]) == {
            "capacity", "queue_limit", "pending", "peak_pending",
            "admitted", "shed", "classes",
        }
        assert set(doc["admission"]["classes"]) == {"default"}
        names = [tenant["name"] for tenant in doc["tenants"]]
        assert names == ["alpha", "beta"]
        for tenant in doc["tenants"]:
            assert tenant["breaker"]["schema_version"] == 1
            assert tenant["breaker"]["state"] in ("closed", "open", "half_open")
            assert set(tenant["bucket"]) == {"rate_per_s", "capacity", "tokens"}

    def test_healthz_is_json_serializable(self, served):
        app, clock, _ = served
        _, doc = app.handle("GET", "/healthz", None)
        assert json.loads(json.dumps(doc, sort_keys=True)) == doc

    def test_metrics_endpoint_serves_standard_document(self, served):
        app, clock, _ = served
        status, doc = app.handle("GET", "/metrics", None)
        assert status == 200
        assert validate_metrics_document(doc) == []

    def test_tenants_endpoint_lists_names(self, served):
        app, clock, _ = served
        status, doc = app.handle("GET", "/v1/tenants", None)
        assert (status, doc["tenants"]) == (200, ["alpha", "beta"])

    def test_admission_slot_released_after_rejection(self, served):
        app, clock, (tweet, mention) = served
        self._fresh_bucket(app, clock)
        before = app.admission.pending
        app.handle(
            "POST", "/v1/link",
            _link_body("alpha", mention.surface, 10**9, tweet.timestamp),
        )
        assert app.admission.pending == before

    def test_per_tenant_isolation_of_rate_limits(self, served):
        app, clock, (tweet, mention) = served
        self._fresh_bucket(app, clock)
        body_a = _link_body("alpha", mention.surface, tweet.user, tweet.timestamp)
        body_b = _link_body("beta", mention.surface, tweet.user, tweet.timestamp)
        while app.handle("POST", "/v1/link", body_a)[0] == 200:
            pass
        # alpha exhausted; beta still serves
        assert app.handle("POST", "/v1/link", body_b)[0] == 200


# ---------------------------------------------------------------------- #
# real sockets (ephemeral port)
# ---------------------------------------------------------------------- #
class TestHTTPSmoke:
    @pytest.fixture
    def http_server(self, small_world):
        from repro.serve.server import ReproHTTPServer

        clock = FakeClock()
        registry, context = build_tenant_registry(
            small_world, [TenantSpec(name="alpha", rate=1000.0, burst=1000.0,
                                     deadline_ms=None)],
            clock=clock,
        )
        app = ServeApp(registry, clock=clock)
        with ReproHTTPServer(app, port=0) as server:
            yield server, app, context

    @staticmethod
    def request(server, method, path, body=None):
        import http.client

        connection = http.client.HTTPConnection(*server.address, timeout=10)
        try:
            connection.request(method, path, body=body)
            response = connection.getresponse()
            return response.status, json.loads(response.read().decode())
        finally:
            connection.close()

    def test_link_and_errors_over_real_sockets(self, http_server):
        server, app, context = http_server
        tweet, mention = next(
            (tweet, m)
            for tweet in context.test_dataset.tweets
            for m in tweet.mentions
        )
        status, doc = self.request(
            server, "POST", "/v1/link",
            _link_body("alpha", mention.surface, tweet.user, tweet.timestamp),
        )
        assert status == 200
        assert doc["outcome"] in ("ok", "abstained")

        status, doc = self.request(server, "GET", "/healthz")
        assert (status, doc["status"]) == (200, "ok")

        status, doc = self.request(server, "POST", "/v1/link", b"{broken")
        assert (status, doc["error"]["type"]) == (400, "bad_request")

        status, doc = self.request(server, "GET", "/nope")
        assert (status, doc["error"]["type"]) == (404, "not_found")

    def test_non_taxonomy_bug_becomes_typed_internal_body(self, http_server):
        server, app, _ = http_server

        def explode(method, path, body=None, headers=None):
            raise RuntimeError("planted bug")

        original = app.handle
        app.handle = explode
        try:
            status, doc = self.request(server, "GET", "/healthz")
        finally:
            app.handle = original
        assert status == 500
        assert doc["error"]["type"] == "internal"
        assert "planted bug" in doc["error"]["message"]

    def test_oversized_body_rejected_without_reading(self, http_server):
        server, app, _ = http_server
        import http.client

        connection = http.client.HTTPConnection(*server.address, timeout=10)
        try:
            connection.putrequest("POST", "/v1/link")
            connection.putheader("Content-Length", str(10**7))
            connection.endheaders()
            response = connection.getresponse()
            doc = json.loads(response.read().decode())
        finally:
            connection.close()
        assert response.status == 400
        assert doc["error"]["type"] == "bad_request"
