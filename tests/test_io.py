"""Serialization round-trip tests."""

import pytest

from repro.graph.digraph import DiGraph
from repro.io import (
    ckb_from_dict,
    ckb_to_dict,
    graph_from_dict,
    graph_to_dict,
    kb_from_dict,
    kb_to_dict,
    load_ckb,
    load_world,
    save_ckb,
    save_world,
    world_from_dict,
    world_to_dict,
)


class TestGraphRoundTrip:
    def test_edges_preserved(self, diamond_graph):
        restored = graph_from_dict(graph_to_dict(diamond_graph))
        assert restored.num_nodes == diamond_graph.num_nodes
        assert sorted(restored.edges()) == sorted(diamond_graph.edges())

    def test_empty_graph(self):
        restored = graph_from_dict(graph_to_dict(DiGraph(3)))
        assert restored.num_nodes == 3
        assert restored.num_edges == 0


class TestKbRoundTrip:
    def test_entities_surfaces_links(self, tiny_kb):
        restored = kb_from_dict(kb_to_dict(tiny_kb))
        assert restored.num_entities == tiny_kb.num_entities
        for entity in tiny_kb.entities():
            twin = restored.entity(entity.entity_id)
            assert twin.title == entity.title
            assert twin.category == entity.category
            assert restored.inlinks(entity.entity_id) == tiny_kb.inlinks(
                entity.entity_id
            )
            assert restored.description(entity.entity_id) == tiny_kb.description(
                entity.entity_id
            )
        assert set(restored.mentions()) == set(tiny_kb.mentions())
        assert restored.candidates("jordan") == tiny_kb.candidates("jordan")

    def test_relatedness_preserved(self, tiny_kb):
        restored = kb_from_dict(kb_to_dict(tiny_kb))
        assert restored.relatedness(0, 3) == pytest.approx(tiny_kb.relatedness(0, 3))


class TestCkbRoundTrip:
    def test_links_preserved(self, tiny_ckb):
        restored = ckb_from_dict(ckb_to_dict(tiny_ckb))
        assert restored.total_links == tiny_ckb.total_links
        for entity_id in tiny_ckb.linked_entities():
            assert restored.count(entity_id) == tiny_ckb.count(entity_id)
            assert restored.community(entity_id) == tiny_ckb.community(entity_id)
            assert restored.recent_count(entity_id, 8 * 86400, 3 * 86400) == (
                tiny_ckb.recent_count(entity_id, 8 * 86400, 3 * 86400)
            )

    def test_file_round_trip(self, tiny_ckb, tmp_path):
        path = tmp_path / "ckb.json"
        save_ckb(tiny_ckb, path)
        restored = load_ckb(path)
        assert restored.total_links == tiny_ckb.total_links

    def test_bad_version_rejected(self, tmp_path):
        path = tmp_path / "ckb.json"
        path.write_text('{"version": 99, "kb": {"entities": []}, "links": []}')
        with pytest.raises(ValueError, match="version"):
            load_ckb(path)


class TestWorldRoundTrip:
    def test_dict_round_trip(self, small_world):
        restored = world_from_dict(world_to_dict(small_world))
        assert restored.num_users == small_world.num_users
        assert len(restored.tweets) == len(small_world.tweets)
        assert restored.tweets[5] == small_world.tweets[5]
        assert sorted(restored.graph.edges()) == sorted(small_world.graph.edges())
        assert restored.hubs == small_world.hubs
        assert (restored.interests == small_world.interests).all()
        assert restored.synthetic_kb.ambiguous_surfaces == (
            small_world.synthetic_kb.ambiguous_surfaces
        )
        assert restored.timeline.horizon == small_world.timeline.horizon
        assert len(restored.timeline.events) == len(small_world.timeline.events)

    def test_file_round_trip_plain_and_gzip(self, small_world, tmp_path):
        for name in ("world.json", "world.json.gz"):
            path = tmp_path / name
            save_world(small_world, path)
            restored = load_world(path)
            assert len(restored.tweets) == len(small_world.tweets)

    def test_gzip_smaller(self, small_world, tmp_path):
        plain = tmp_path / "w.json"
        packed = tmp_path / "w.json.gz"
        save_world(small_world, plain)
        save_world(small_world, packed)
        assert packed.stat().st_size < plain.stat().st_size

    def test_bad_version_rejected(self, small_world):
        payload = world_to_dict(small_world)
        payload["version"] = 99
        with pytest.raises(ValueError, match="version"):
            world_from_dict(payload)

    def test_restored_world_runs_experiments(self, small_world):
        """A reloaded world must drive the full pipeline identically."""
        from repro.eval.context import build_experiment
        from repro.eval.metrics import mention_and_tweet_accuracy

        restored = world_from_dict(world_to_dict(small_world))
        original = build_experiment(world=small_world, complement_method="truth")
        reloaded = build_experiment(world=restored, complement_method="truth")
        run_a = original.social_temporal().run(original.test_dataset)
        run_b = reloaded.social_temporal().run(reloaded.test_dataset)
        acc_a = mention_and_tweet_accuracy(
            original.test_dataset.tweets, run_a.predictions
        )
        acc_b = mention_and_tweet_accuracy(
            reloaded.test_dataset.tweets, run_b.predictions
        )
        assert acc_a == acc_b
