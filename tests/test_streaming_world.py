"""Streaming world-generator tests: determinism and bounded memory.

The contract of :mod:`repro.graph.generators`' streaming API is that a
profile's output is a pure function of ``(seed, user id)``: the same
profile yields byte-identical edge and tweet streams whether consumed
eagerly, chunk-at-a-time, or at any chunk size — and emitting a 100k-user
world allocates O(chunk), never O(world) (the tracemalloc pin below).
"""

import tracemalloc

import pytest

from repro.graph.generators import (
    StreamingChunk,
    StreamingWorldProfile,
    stream_follow_edges,
    stream_tweet_events,
    stream_user_chunks,
    streaming_world_graph,
)


def small_profile(**overrides) -> StreamingWorldProfile:
    base = dict(num_users=1_200, num_factions=16, seed=7)
    base.update(overrides)
    return StreamingWorldProfile(**base)


class TestDeterminism:
    @pytest.mark.parametrize("chunk_size", [1, 37, 500, 5_000])
    def test_chunked_equals_eager(self, chunk_size):
        """Concatenated chunks == the eager streams, byte for byte."""
        profile = small_profile()
        eager_edges = list(stream_follow_edges(profile))
        eager_tweets = list(stream_tweet_events(profile))
        chunked_edges = []
        chunked_tweets = []
        for chunk in stream_user_chunks(profile, chunk_size=chunk_size):
            assert isinstance(chunk, StreamingChunk)
            assert chunk.stop - chunk.start <= chunk_size
            chunked_edges.extend(chunk.edges)
            chunked_tweets.extend(chunk.tweets)
        assert chunked_edges == eager_edges
        assert chunked_tweets == eager_tweets

    def test_same_seed_same_world(self):
        a = small_profile()
        b = small_profile()
        assert list(stream_follow_edges(a)) == list(stream_follow_edges(b))
        assert list(stream_tweet_events(a)) == list(stream_tweet_events(b))

    def test_different_seed_different_world(self):
        a = list(stream_follow_edges(small_profile(seed=7)))
        b = list(stream_follow_edges(small_profile(seed=8)))
        assert a != b

    def test_restreaming_is_stable(self):
        """Generators are restartable: a second pass replays the first."""
        profile = small_profile()
        assert list(stream_follow_edges(profile)) == list(
            stream_follow_edges(profile)
        )

    def test_graph_materialization_matches_stream(self):
        profile = small_profile()
        graph = streaming_world_graph(profile)
        edges = set(stream_follow_edges(profile))
        assert graph.num_nodes == profile.num_users
        # duplicates are collapsed by the graph; the stream never emits any
        assert graph.num_edges == len(edges)
        for u, v in list(edges)[:200]:
            assert graph.has_edge(u, v)

    def test_no_self_loops_or_duplicates_emitted(self):
        profile = small_profile()
        seen = set()
        for u, v in stream_follow_edges(profile):
            assert u != v
            assert (u, v) not in seen
            seen.add((u, v))


class TestProfileValidation:
    def test_rejects_more_hubs_than_users(self):
        with pytest.raises(ValueError):
            StreamingWorldProfile(num_users=10, num_factions=8, faction_hubs=2)

    def test_rejects_bad_chunk_size(self):
        profile = small_profile()
        with pytest.raises(ValueError):
            next(stream_user_chunks(profile, chunk_size=0))

    def test_positional_id_layout(self):
        profile = small_profile()
        hubs = set(profile.hub_ids())
        assert len(hubs) == profile.num_hubs
        assert hubs == set(range(profile.num_hubs))
        # every regular id belongs to exactly one faction, round-robin
        for user in range(profile.num_hubs, profile.num_hubs + 64):
            faction = profile.faction_of(user)
            assert 0 <= faction < profile.num_factions

    def test_faction_member_roundtrip(self):
        profile = small_profile()
        for faction in range(profile.num_factions):
            size = profile.faction_size(faction)
            assert size > 0
            for index in (0, size - 1):
                member = profile.faction_member(faction, index)
                assert profile.faction_of(member) == faction


class TestBoundedMemory:
    def test_100k_tier_streams_in_bounded_memory(self):
        """Peak allocation while streaming 100k users stays O(chunk).

        An eager materialization of this world is ~500k edges and ~200k
        tweet events — tens of MiB of tuples.  The chunked stream must
        hold only one chunk of users at a time; 16 MiB of headroom is an
        order of magnitude below eager and far above one 2 000-user
        chunk.
        """
        profile = StreamingWorldProfile(
            num_users=100_000, num_factions=800, seed=11
        )
        edges = 0
        tweets = 0
        tracemalloc.start()
        try:
            tracemalloc.reset_peak()
            for chunk in stream_user_chunks(profile, chunk_size=2_000):
                edges += len(chunk.edges)
                tweets += len(chunk.tweets)
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert edges > 400_000
        assert tweets > 100_000
        assert peak < 16 * 2**20, f"peak {peak / 2**20:.1f} MiB"
