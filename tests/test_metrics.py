"""Accuracy metric tests."""

import pytest

from repro.eval.metrics import (
    accuracy_by_category,
    accuracy_by_tweet_length,
    mention_and_tweet_accuracy,
)
from repro.kb.entity import EntityCategory
from repro.kb.knowledgebase import Knowledgebase
from repro.stream.tweet import MentionSpan, Tweet


def tweet_with(tweet_id, truths):
    return Tweet(
        tweet_id=tweet_id,
        user=0,
        timestamp=0.0,
        text="m",
        mentions=tuple(MentionSpan("m", true_entity=t) for t in truths),
    )


class TestMentionAndTweetAccuracy:
    def test_all_correct(self):
        tweets = [tweet_with(1, [10, 20])]
        report = mention_and_tweet_accuracy(tweets, {1: [10, 20]})
        assert report.mention_accuracy == 1.0
        assert report.tweet_accuracy == 1.0

    def test_partial_tweet_counts_mentions_only(self):
        tweets = [tweet_with(1, [10, 20])]
        report = mention_and_tweet_accuracy(tweets, {1: [10, 99]})
        assert report.mention_accuracy == 0.5
        assert report.tweet_accuracy == 0.0

    def test_tweet_accuracy_leq_mention_accuracy(self):
        tweets = [tweet_with(1, [10, 20]), tweet_with(2, [30])]
        report = mention_and_tweet_accuracy(tweets, {1: [10, 99], 2: [30]})
        assert report.tweet_accuracy <= report.mention_accuracy

    def test_missing_prediction_is_wrong(self):
        tweets = [tweet_with(1, [10])]
        report = mention_and_tweet_accuracy(tweets, {})
        assert report.mention_accuracy == 0.0

    def test_none_prediction_is_wrong(self):
        tweets = [tweet_with(1, [10])]
        report = mention_and_tweet_accuracy(tweets, {1: [None]})
        assert report.mention_accuracy == 0.0

    def test_short_prediction_list(self):
        tweets = [tweet_with(1, [10, 20])]
        report = mention_and_tweet_accuracy(tweets, {1: [10]})
        assert report.mention_accuracy == 0.5

    def test_unlabeled_mentions_skipped(self):
        tweet = Tweet(
            tweet_id=1, user=0, timestamp=0.0, text="m",
            mentions=(MentionSpan("m", true_entity=None), MentionSpan("m", true_entity=5)),
        )
        report = mention_and_tweet_accuracy([tweet], {1: [99, 5]})
        assert report.num_mentions == 1
        assert report.mention_accuracy == 1.0

    def test_empty_dataset(self):
        report = mention_and_tweet_accuracy([], {})
        assert report.mention_accuracy == 0.0
        assert report.num_tweets == 0

    def test_as_row(self):
        report = mention_and_tweet_accuracy([tweet_with(1, [10])], {1: [10]})
        row = report.as_row("ours")
        assert row["method"] == "ours"
        assert row["mention"] == 1.0


class TestByTweetLength:
    def test_buckets(self):
        tweets = [tweet_with(1, [10]), tweet_with(2, [10, 20]), tweet_with(3, [30])]
        predictions = {1: [10], 2: [10, 20], 3: [99]}
        buckets = accuracy_by_tweet_length(tweets, predictions)
        assert buckets[1].mention_accuracy == 0.5
        assert buckets[2].mention_accuracy == 1.0

    def test_long_tweets_excluded(self):
        tweets = [tweet_with(1, [1, 2, 3, 4, 5])]
        assert accuracy_by_tweet_length(tweets, {}, max_length=4) == {}


class TestByCategory:
    def test_grouping(self):
        kb = Knowledgebase()
        kb.add_entity("p", category=EntityCategory.PERSON)
        kb.add_entity("l", category=EntityCategory.LOCATION)
        tweets = [tweet_with(1, [0, 1])]
        accuracy = accuracy_by_category(tweets, {1: [0, 99]}, kb)
        assert accuracy["Person"] == 1.0
        assert accuracy["Location"] == 0.0
