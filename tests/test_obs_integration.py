"""Observability wiring end to end: instrumented modules, worker-count
metrics parity, degradation counting, and the ``repro trace`` CLI."""

import json
import os

import pytest

from repro.cli import main
from repro.config import DAY, LinkerConfig
from repro.core.batch import LinkRequest, MicroBatchLinker
from repro.core.linker import SocialTemporalLinker
from repro.core.parallel import ParallelBatchLinker
from repro.core.pipeline import TextLinkingPipeline
from repro.errors import IndexUnavailableError
from repro.graph.digraph import DiGraph
from repro.obs.export import load_trace_jsonl, validate_trace_document
from repro.obs.metrics import METRICS, validate_metrics_document
from repro.obs.scenarios import SCENARIOS, golden_path
from repro.obs.trace import TRACE
from repro.resilience.breaker import CircuitBreaker
from repro.stream.ingest import ResilientIngestor, TweetValidator
from repro.stream.tweet import Tweet


@pytest.fixture(autouse=True)
def clean_observability():
    """Each test sees (and leaves behind) pristine global TRACE/METRICS."""
    TRACE.reset()
    TRACE.disable()
    METRICS.reset()
    yield
    TRACE.reset()
    TRACE.disable()
    METRICS.reset()


@pytest.fixture
def linker(tiny_ckb):
    graph = DiGraph(13)
    graph.add_edge(0, 10)
    graph.add_edge(5, 11)
    return SocialTemporalLinker(
        tiny_ckb, graph, config=LinkerConfig(burst_threshold=2, influential_users=2)
    )


class _FailingProvider:
    def reachability(self, source: int, target: int) -> float:
        raise IndexUnavailableError("index down")


def _requests():
    return [
        LinkRequest("jordan", user=0, now=8 * DAY),
        LinkRequest("jordan", user=5, now=8 * DAY),
        LinkRequest("nba", user=0, now=8 * DAY),
        LinkRequest("jordan", user=0, now=2 * DAY),
        LinkRequest("qqqqqq", user=0, now=0.0),
    ]


class TestLinkerInstrumentation:
    def test_link_counts_requests_and_scores(self, linker):
        linker.link("jordan", user=0, now=8 * DAY)
        assert METRICS.counter("link.requests") == 1
        assert METRICS.histogram("link.candidates_per_request").count == 1
        assert METRICS.histogram("link.best_score").count == 1

    def test_no_candidates_counted_and_abstains(self, linker):
        linker.link("qqqqqq", user=0, now=0.0)
        assert METRICS.counter("link.no_candidates") == 1
        assert METRICS.counter("link.abstained") == 1

    def test_trace_disabled_emits_no_spans(self, linker):
        linker.link("jordan", user=0, now=8 * DAY)
        assert TRACE.finished_spans() == []

    def test_trace_enabled_emits_stage_tree(self, linker):
        TRACE.enable()
        linker.link("jordan", user=0, now=8 * DAY)
        spans = TRACE.drain()
        root = next(s for s in spans if s.parent_id is None)
        assert root.name == "link.request"
        children = {s.name for s in spans if s.parent_id == root.span_id}
        assert {
            "link.candidates",
            "link.interest",
            "link.recency",
            "link.popularity",
            "link.combine",
        } <= children

    def test_degraded_link_counted_by_reason(self, tiny_ckb):
        linker = SocialTemporalLinker(
            tiny_ckb, DiGraph(13), reachability=_FailingProvider()
        )
        result = linker.link("jordan", user=0, now=8 * DAY)
        assert result.degradation == "index_unavailable"
        assert METRICS.counter("link.degraded") == 1
        assert METRICS.counter("link.degraded.index_unavailable") == 1
        # degraded results never abstain (interest was not measured)
        assert METRICS.counter("link.abstained") == 0


class TestBatchInstrumentation:
    def test_batch_shares_and_counts_caches(self, linker):
        MicroBatchLinker(linker).link_batch(_requests())
        assert METRICS.counter("link.requests") == 5
        # 3 distinct surfaces -> 3 candidate misses, 2 hits
        assert METRICS.counter("batch.candidate_cache.miss") == 3
        assert METRICS.counter("batch.candidate_cache.hit") == 2

    def test_batch_degradation_emits_typed_trace_event(self, tiny_ckb):
        """Satellite fix: MicroBatchLinker degradations are countable in
        the registry and visible as typed events in the trace."""
        linker = SocialTemporalLinker(
            tiny_ckb, DiGraph(13), reachability=_FailingProvider()
        )
        TRACE.enable()
        results = MicroBatchLinker(linker).link_batch(
            [LinkRequest("jordan", user=0, now=8 * DAY)] * 2
        )
        assert [r.degradation for r in results] == ["index_unavailable"] * 2
        assert METRICS.counter("link.degraded") == 2
        assert METRICS.counter("link.degraded.index_unavailable") == 2
        events = [
            event
            for span in TRACE.drain()
            for event in span.events
            if event.name == "link.degraded"
        ]
        assert len(events) == 2
        assert all(e.attributes == {"reason": "index_unavailable"} for e in events)

    def test_batch_and_single_path_record_same_totals(self, linker):
        for request in _requests():
            linker.link(request.surface, request.user, request.now)
        single = METRICS.snapshot()
        METRICS.reset()
        MicroBatchLinker(linker).link_batch(_requests())
        batch = METRICS.snapshot()
        shared = (
            "link.requests",
            "link.no_candidates",
            "link.degraded",
            "link.abstained",
        )
        for name in shared:
            assert batch["counters"].get(name, 0) == single["counters"].get(name, 0)
        assert (
            batch["histograms"]["link.candidates_per_request"]
            == single["histograms"]["link.candidates_per_request"]
        )


class TestWorkerCountParity:
    def test_workers_1_and_4_merge_to_identical_totals(self, linker):
        requests = _requests() * 3
        with ParallelBatchLinker(linker, workers=1) as sequential:
            sequential.link_batch(requests)
        single = METRICS.snapshot()
        METRICS.reset()
        with ParallelBatchLinker(linker, workers=4) as parallel:
            parallel.link_batch(requests)
        merged = METRICS.snapshot()
        assert merged["counters"] == single["counters"]
        assert merged["histograms"] == single["histograms"]


class TestPipelineAndStreamInstrumentation:
    def test_pipeline_counts_texts_and_mentions(self, linker):
        pipeline = TextLinkingPipeline(linker)
        pipeline.annotate("jordan dunks on the nba", user=0, now=8 * DAY)
        assert METRICS.counter("pipeline.texts") == 1
        assert METRICS.counter("pipeline.mentions") >= 1

    def test_ingest_counts_and_dead_letter_events(self):
        TRACE.enable()
        ingestor = ResilientIngestor(
            validator=TweetValidator(known_users=range(5))
        )
        good = Tweet(tweet_id=1, user=0, timestamp=10.0, text="hello")
        ingestor.push(good)
        ingestor.push(good)  # duplicate -> dead letter
        ingestor.flush()
        assert METRICS.counter("ingest.received") == 2
        assert METRICS.counter("ingest.admitted") == 1
        assert METRICS.counter("ingest.dead_letters") == 1
        assert METRICS.counter("ingest.dead_letters.duplicate") == 1
        assert METRICS.counter("ingest.emitted") == 1
        events = [
            event for span in TRACE.drain() for event in span.events
        ]
        assert any(
            e.name == "ingest.dead_letter"
            and e.attributes == {"reason": "duplicate"}
            for e in events
        )

    def test_breaker_transitions_counted(self):
        clock = iter(float(t) for t in range(100))
        breaker = CircuitBreaker(
            failure_threshold=1, recovery_timeout=2.0, clock=lambda: next(clock)
        )
        def failing():
            raise IndexUnavailableError("down")
        with pytest.raises(IndexUnavailableError):
            breaker.call(failing)
        assert METRICS.counter("breaker.opened") == 1
        while breaker.state.value != "half_open":
            pass
        assert METRICS.counter("breaker.half_opened") == 1
        breaker.call(lambda: 42)
        assert METRICS.counter("breaker.closed") == 1


GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")


class TestTraceCli:
    def test_check_golden_passes_against_fixtures(self):
        assert main(["trace", "--check-golden", "--golden-dir", GOLDEN_DIR]) == 0

    def test_write_and_check_roundtrip(self, tmp_path):
        golden_dir = str(tmp_path / "golden")
        assert main(["trace", "--write-golden", "--golden-dir", golden_dir]) == 0
        for name in SCENARIOS:
            assert os.path.exists(golden_path(golden_dir, name))
        assert main(["trace", "--check-golden", "--golden-dir", golden_dir]) == 0

    def test_check_golden_fails_on_drift(self, tmp_path):
        golden_dir = str(tmp_path / "golden")
        main(["trace", "--write-golden", "--golden-dir", golden_dir])
        path = golden_path(golden_dir, "normal")
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        lines[1] = lines[1].replace('"jordan"', '"bulls"')
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
        assert main(["trace", "--check-golden", "--golden-dir", golden_dir]) == 1

    def test_check_golden_fails_on_missing_fixture(self, tmp_path):
        assert (
            main(["trace", "--check-golden", "--golden-dir", str(tmp_path / "nope")])
            == 1
        )

    def test_out_writes_valid_single_scenario_trace(self, tmp_path):
        out = str(tmp_path / "normal.trace.jsonl")
        assert main(["trace", "--scenario", "normal", "--out", out]) == 0
        with open(out, "r", encoding="utf-8") as handle:
            document = load_trace_jsonl(handle.read())
        assert validate_trace_document(document) == []
        assert document["meta"]["scenario"] == "normal"

    def test_out_requires_single_scenario(self, tmp_path):
        out = str(tmp_path / "all.trace.jsonl")
        assert main(["trace", "--out", out]) == 2

    def test_write_and_check_are_mutually_exclusive(self):
        assert main(["trace", "--write-golden", "--check-golden"]) == 2

    def test_metrics_out_document_validates(self, tmp_path):
        out = str(tmp_path / "metrics.json")
        assert main(["trace", "--metrics-out", out]) == 0
        with open(out, "r", encoding="utf-8") as handle:
            document = json.load(handle)
        assert validate_metrics_document(document) == []
        # three scenarios, four link requests in total
        assert document["metrics"]["counters"]["link.requests"] == 4
