"""Unit tests for :mod:`repro.cache`: epochs, the epoch-keyed memo table,
the incremental burst tracker, and the vector-keyed recency evaluator.

The bit-identity *property* suite lives in ``test_cache_properties.py``;
this file pins the mechanisms one at a time so a regression points at
the broken part, not just at "outputs diverged".
"""

from __future__ import annotations

import pickle

import pytest

from repro.cache import BurstTracker, Epoch, EpochKeyedCache, IncrementalRecency
from repro.cache.scores import ScoreCaches, hit_rate_names
from repro.config import DAY, LinkerConfig
from repro.core.recency import (
    RecencyPropagationNetwork,
    propagated_recency,
    sliding_window_recency,
)
from repro.graph.digraph import DiGraph
from repro.perf import PERF


@pytest.fixture(autouse=True)
def clean_perf():
    PERF.reset()
    yield
    PERF.reset()


# ---------------------------------------------------------------------- #
# Epoch
# ---------------------------------------------------------------------- #
class TestEpoch:
    def test_starts_at_zero_and_bumps_monotonically(self):
        epoch = Epoch()
        assert epoch.value == 0
        assert epoch.bump() == 1
        assert epoch.bump() == 2
        assert epoch.value == 2

    def test_rejects_negative_start(self):
        with pytest.raises(ValueError):
            Epoch(-1)

    def test_pickle_round_trip(self):
        """Workers inherit epochs by fork or pickle; both must agree."""
        epoch = Epoch(7)
        clone = pickle.loads(pickle.dumps(epoch))
        assert clone.value == 7
        clone.bump()
        assert clone.value == 8
        assert epoch.value == 7  # independent after the round trip


# ---------------------------------------------------------------------- #
# EpochKeyedCache
# ---------------------------------------------------------------------- #
class TestEpochKeyedCache:
    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            EpochKeyedCache("score_cache.test", 0)

    def test_hit_requires_matching_epochs(self):
        cache = EpochKeyedCache("score_cache.test", 8)
        cache.put("jordan", (1, 4), (0, 1, 2))
        assert cache.get("jordan", (1, 4)) == (0, 1, 2)
        assert cache.get("jordan", (2, 4)) is None  # epoch moved -> miss
        assert PERF.counter("score_cache.test.hit") == 1
        assert PERF.counter("score_cache.test.miss") == 1

    def test_stale_entry_overwritten_by_next_put(self):
        cache = EpochKeyedCache("score_cache.test", 8)
        cache.put("k", (1,), "old")
        cache.put("k", (2,), "new")
        assert len(cache) == 1
        assert cache.get("k", (2,)) == "new"

    def test_lru_eviction_at_capacity(self):
        cache = EpochKeyedCache("score_cache.test", 2)
        cache.put("a", (0,), 1)
        cache.put("b", (0,), 2)
        assert cache.get("a", (0,)) == 1  # refresh "a" -> "b" is now LRU
        cache.put("c", (0,), 3)
        assert len(cache) == 2
        assert cache.get("b", (0,)) is None
        assert cache.get("a", (0,)) == 1
        assert cache.get("c", (0,)) == 3
        assert PERF.counter("score_cache.test.evictions") == 1

    def test_lookup_computes_exactly_once_per_epoch(self):
        cache = EpochKeyedCache("score_cache.test", 8)
        calls = []

        def compute():
            calls.append(1)
            return "value"

        assert cache.lookup("k", (3,), compute) == "value"
        assert cache.lookup("k", (3,), compute) == "value"
        assert len(calls) == 1
        assert cache.lookup("k", (4,), compute) == "value"
        assert len(calls) == 2

    def test_clear_empties_without_breaking(self):
        cache = EpochKeyedCache("score_cache.test", 8)
        cache.put("k", (1,), "v")
        cache.clear()
        assert len(cache) == 0
        assert cache.get("k", (1,)) is None


# ---------------------------------------------------------------------- #
# BurstTracker
# ---------------------------------------------------------------------- #
class TestBurstTracker:
    def test_validates_parameters(self, tiny_ckb):
        with pytest.raises(ValueError):
            BurstTracker(tiny_ckb, window=0.0, burst_threshold=1)
        with pytest.raises(ValueError):
            BurstTracker(tiny_ckb, window=DAY, burst_threshold=-1)

    def test_counts_match_recent_count_oracle(self, tiny_ckb):
        """Window boundary parity: admit ts <= now, expire ts < now - w."""
        tracker = BurstTracker(tiny_ckb, window=3 * DAY, burst_threshold=2)
        entities = tiny_ckb.linked_entities()
        for now in (0.0, 1.5 * DAY, 3 * DAY, 3.0000001 * DAY, 8 * DAY, 40 * DAY):
            tracker.advance(now)
            for entity_id in entities:
                assert tracker.count(entity_id) == tiny_ckb.recent_count(
                    entity_id, now, 3 * DAY
                ), (entity_id, now)

    def test_incremental_links_match_oracle(self, tiny_ckb):
        tracker = BurstTracker(tiny_ckb, window=2 * DAY, burst_threshold=1)
        tracker.advance(5 * DAY)
        tiny_ckb.link_tweet(3, user=10, timestamp=4.5 * DAY)  # in window
        tiny_ckb.link_tweet(3, user=10, timestamp=9 * DAY)  # future: admit heap
        tiny_ckb.link_tweet(3, user=10, timestamp=1 * DAY)  # behind window
        assert tracker.count(3) == tiny_ckb.recent_count(3, 5 * DAY, 2 * DAY) == 1
        tracker.advance(9 * DAY)
        assert tracker.count(3) == tiny_ckb.recent_count(3, 9 * DAY, 2 * DAY) == 1

    def test_event_skipping_whole_window_between_advances(self, tiny_ckb):
        """A future event that entered *and* left the window while the
        clock stood still must not be double-counted or leak."""
        tracker = BurstTracker(tiny_ckb, window=1 * DAY, burst_threshold=1)
        tracker.advance(0.0)
        tiny_ckb.link_tweet(3, user=10, timestamp=2 * DAY)
        tracker.advance(40 * DAY)
        assert tracker.count(3) == tiny_ckb.recent_count(3, 40 * DAY, 1 * DAY) == 0

    def test_time_regression_triggers_rebuild(self, tiny_ckb):
        tracker = BurstTracker(tiny_ckb, window=3 * DAY, burst_threshold=1)
        tracker.advance(8 * DAY)
        assert tracker.advance(2 * DAY) is True  # replay restarted
        assert tracker.count(0) == tiny_ckb.recent_count(0, 2 * DAY, 3 * DAY)
        assert tracker.rebuilds == 2  # initial lazy build + the regression

    def test_prune_forces_rebuild(self, tiny_ckb):
        tracker = BurstTracker(tiny_ckb, window=30 * DAY, burst_threshold=1)
        tracker.advance(8 * DAY)
        tiny_ckb.prune_before(2 * DAY)
        assert tracker.needs_rebuild
        assert tracker.advance(8 * DAY) is True
        for entity_id in tiny_ckb.linked_entities():
            assert tracker.count(entity_id) == tiny_ckb.recent_count(
                entity_id, 8 * DAY, 30 * DAY
            )

    def test_dirty_tracks_gated_changes_only(self, tiny_ckb):
        tracker = BurstTracker(tiny_ckb, window=30 * DAY, burst_threshold=3)
        tracker.advance(8 * DAY)
        tracker.consume_dirty()
        # entity 3 has no links: one new link keeps it below θ1=3 -> clean
        tiny_ckb.link_tweet(3, user=10, timestamp=8 * DAY)
        assert tracker.consume_dirty() == set()
        # entity 0 is far above θ1: any count move changes the gated value
        tiny_ckb.link_tweet(0, user=10, timestamp=8 * DAY)
        assert tracker.consume_dirty() == {0}
        # consume is destructive
        assert tracker.consume_dirty() == set()


# ---------------------------------------------------------------------- #
# IncrementalRecency
# ---------------------------------------------------------------------- #
def _network(tiny_ckb):
    return RecencyPropagationNetwork(
        tiny_ckb.kb, relatedness_threshold=0.2, propagation_lambda=0.6
    )


class TestIncrementalRecency:
    def test_rejects_non_positive_capacity(self, tiny_ckb):
        with pytest.raises(ValueError):
            IncrementalRecency(tiny_ckb, None, DAY, 1, capacity=0)

    def test_sliding_matches_oracle(self, tiny_ckb):
        cached = IncrementalRecency(
            tiny_ckb, None, window=3 * DAY, burst_threshold=2
        )
        for now in (0.0, 2 * DAY, 8 * DAY, 5 * DAY):  # includes a regression
            expected = sliding_window_recency(
                tiny_ckb, [0, 1, 2], now, 3 * DAY, 2
            )
            assert cached.scores([0, 1, 2], now) == expected

    def test_propagated_matches_oracle(self, tiny_ckb):
        network = _network(tiny_ckb)
        cached = IncrementalRecency(
            tiny_ckb, network, window=3 * DAY, burst_threshold=2
        )
        for now in (0.0, 2 * DAY, 8 * DAY):
            expected = propagated_recency(
                tiny_ckb, network, [0, 1, 2], now, 3 * DAY, 2
            )
            assert cached.scores([0, 1, 2], now) == expected

    def test_vector_key_hits_on_unchanged_input(self, tiny_ckb):
        network = _network(tiny_ckb)
        cached = IncrementalRecency(
            tiny_ckb, network, window=3 * DAY, burst_threshold=2
        )
        cached.scores([0, 1, 2], 8 * DAY)
        misses = PERF.counter("score_cache.recency.miss")
        cached.scores([0, 1, 2], 8 * DAY)
        assert PERF.counter("score_cache.recency.miss") == misses
        assert PERF.counter("score_cache.recency.hit") > 0

    def test_vector_key_survives_rebuild(self, tiny_ckb):
        """A replay that regresses time rebuilds the tracker but the
        fixed-point memo — keyed on values, not versions — still hits."""
        network = _network(tiny_ckb)
        cached = IncrementalRecency(
            tiny_ckb, network, window=3 * DAY, burst_threshold=2
        )
        cached.scores([0, 1, 2], 8 * DAY)
        cached.scores([0, 1, 2], 2 * DAY)  # regression -> rebuild
        misses = PERF.counter("score_cache.recency.miss")
        result = cached.scores([0, 1, 2], 8 * DAY)  # same vector as pass 1
        assert PERF.counter("score_cache.recency.miss") == misses
        assert result == propagated_recency(
            tiny_ckb, network, [0, 1, 2], 8 * DAY, 3 * DAY, 2
        )

    def test_memo_eviction_at_capacity(self, tiny_ckb):
        network = _network(tiny_ckb)
        cached = IncrementalRecency(
            tiny_ckb, network, window=DAY, burst_threshold=1, capacity=1
        )
        # different nows -> different gated vectors -> distinct memo keys
        cached.scores([0, 1], 1 * DAY)
        cached.scores([0, 1], 3 * DAY)
        cached.scores([0, 1], 5 * DAY)
        assert PERF.counter("score_cache.recency.evictions") > 0

    def test_pre_advance_ignores_regressions(self, tiny_ckb):
        cached = IncrementalRecency(
            tiny_ckb, None, window=3 * DAY, burst_threshold=2
        )
        cached.scores([0], 8 * DAY)
        rebuilds = cached.tracker.rebuilds
        cached.pre_advance(2 * DAY)  # backwards: must be a no-op
        assert cached.tracker.now == 8 * DAY
        assert cached.tracker.rebuilds == rebuilds
        cached.pre_advance(9 * DAY)
        assert cached.tracker.now == 9 * DAY


# ---------------------------------------------------------------------- #
# ScoreCaches
# ---------------------------------------------------------------------- #
class TestScoreCaches:
    @pytest.fixture
    def caches(self, tiny_ckb):
        graph = DiGraph.from_edges(13, [(10, 11), (11, 12)])
        config = LinkerConfig(score_caching=True)
        return (
            ScoreCaches(tiny_ckb, graph, network=None, config=config),
            tiny_ckb,
            graph,
        )

    def test_epoch_tuples_track_their_owners(self, caches):
        bundle, ckb, graph = caches
        before = (
            bundle.candidate_epochs(),
            bundle.popularity_epochs(),
            bundle.interest_epochs(),
        )
        ckb.kb.add_surface_form("his airness", 0)
        ckb.link_tweet(0, user=10, timestamp=9 * DAY)
        graph.add_edge(12, 10)
        after = (
            bundle.candidate_epochs(),
            bundle.popularity_epochs(),
            bundle.interest_epochs(),
        )
        assert all(a != b for a, b in zip(before, after))

    def test_kb_mutation_leaves_link_epochs_alone(self, caches):
        bundle, ckb, _ = caches
        popularity = bundle.popularity_epochs()
        interest = bundle.interest_epochs()
        ckb.kb.add_surface_form("goat", 0)
        assert bundle.popularity_epochs() == popularity
        assert bundle.interest_epochs() == interest

    def test_clear_is_safe(self, caches):
        bundle, _, _ = caches
        bundle.candidates.put("jordan", bundle.candidate_epochs(), (0, 1, 2))
        bundle.clear()
        assert bundle.candidates.get("jordan", bundle.candidate_epochs()) is None

    def test_hit_rate_names_cover_all_four_caches(self):
        assert hit_rate_names() == {
            "score_cache.candidates",
            "score_cache.popularity",
            "score_cache.interest",
            "score_cache.recency",
        }
