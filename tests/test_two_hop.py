"""Extended 2-hop cover (Algorithm 2) tests.

Guarantees under test (DESIGN.md §5):
* distances are exact within the H-hop horizon;
* the label-recovered followee set is a non-empty subset of the exact one;
* ``reachability`` is positive exactly when the pair is reachable, equals 1
  on direct edges, and the ``exact_followees`` mode reproduces Eq. 4 exactly.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.digraph import DiGraph
from repro.graph.reachability import weighted_reachability
from repro.graph.transitive_closure import exact_followee_set
from repro.graph.traversal import bfs_distances
from repro.graph.two_hop import build_two_hop_cover

from conftest import random_graph


def edge_list_strategy(max_nodes=9):
    return st.integers(min_value=2, max_value=max_nodes).flatmap(
        lambda n: st.tuples(
            st.just(n),
            st.lists(
                st.tuples(
                    st.integers(min_value=0, max_value=n - 1),
                    st.integers(min_value=0, max_value=n - 1),
                ).filter(lambda e: e[0] != e[1]),
                max_size=3 * n,
                unique=True,
            ),
        )
    )


def assert_distances_exact(graph, cover, max_hops):
    for u in graph.nodes():
        truth = bfs_distances(graph, u, max_hops)
        for v in graph.nodes():
            if u == v:
                continue
            expected = truth.get(v, math.inf)
            assert cover.distance(u, v) == expected, (u, v)


class TestDistances:
    def test_diamond(self, diamond_graph):
        cover = build_two_hop_cover(diamond_graph)
        assert_distances_exact(diamond_graph, cover, 4)

    def test_chain_with_horizon(self, chain_graph):
        cover = build_two_hop_cover(chain_graph, max_hops=3)
        assert cover.distance(0, 3) == 3
        assert cover.distance(0, 4) == math.inf  # beyond horizon

    def test_self_distance_zero(self, diamond_graph):
        cover = build_two_hop_cover(diamond_graph)
        assert cover.distance(2, 2) == 0.0

    def test_random_graph(self):
        graph = random_graph(30, 110, seed=4)
        cover = build_two_hop_cover(graph)
        assert_distances_exact(graph, cover, 4)

    @given(edge_list_strategy())
    @settings(max_examples=60, deadline=None)
    def test_property_distances_exact(self, spec):
        num_nodes, edges = spec
        graph = DiGraph.from_edges(num_nodes, edges)
        cover = build_two_hop_cover(graph, max_hops=4)
        assert_distances_exact(graph, cover, 4)


class TestFolloweeSets:
    def test_diamond_query(self, diamond_graph):
        cover = build_two_hop_cover(diamond_graph)
        distance, followees = cover.query(0, 4)
        assert distance == 2
        assert followees <= {1, 2}
        assert followees  # non-empty for a reachable pair

    @given(edge_list_strategy())
    @settings(max_examples=60, deadline=None)
    def test_property_subset_of_exact(self, spec):
        num_nodes, edges = spec
        graph = DiGraph.from_edges(num_nodes, edges)
        cover = build_two_hop_cover(graph, max_hops=4)
        for u in graph.nodes():
            for v in graph.nodes():
                if u == v:
                    continue
                distance, followees = cover.query(u, v)
                if distance == math.inf:
                    assert followees == set()
                    continue
                exact = exact_followee_set(graph, u, v, max_hops=4)
                assert followees <= exact, (u, v)

    def test_exact_followee_recovery(self):
        graph = random_graph(20, 70, seed=6)
        cover = build_two_hop_cover(graph)
        for u in graph.nodes():
            for v in graph.nodes():
                if u == v or cover.distance(u, v) == math.inf:
                    continue
                assert cover.exact_followee_set(u, v) == exact_followee_set(
                    graph, u, v
                )


class TestReachability:
    def test_direct_edge_is_one(self, diamond_graph):
        cover = build_two_hop_cover(diamond_graph)
        assert cover.reachability(0, 1) == 1.0

    def test_unreachable_zero(self, diamond_graph):
        cover = build_two_hop_cover(diamond_graph)
        assert cover.reachability(3, 4) == 0.0

    def test_exact_mode_matches_eq4(self):
        graph = random_graph(22, 80, seed=8)
        cover = build_two_hop_cover(graph)
        for u in graph.nodes():
            for v in graph.nodes():
                if u == v:
                    continue
                expected = weighted_reachability(graph, u, v, 4)
                assert cover.reachability(u, v, exact_followees=True) == pytest.approx(
                    expected
                ), (u, v)

    @given(edge_list_strategy())
    @settings(max_examples=40, deadline=None)
    def test_property_label_mode_bounds(self, spec):
        """Label-recovered R is positive iff reachable and never exceeds Eq. 4."""
        num_nodes, edges = spec
        graph = DiGraph.from_edges(num_nodes, edges)
        cover = build_two_hop_cover(graph, max_hops=4)
        for u in graph.nodes():
            for v in graph.nodes():
                if u == v:
                    continue
                expected = weighted_reachability(graph, u, v, 4)
                got = cover.reachability(u, v)
                if expected == 0.0:
                    assert got == 0.0
                else:
                    assert 0.0 < got <= expected + 1e-12


class TestIndexStatistics:
    def test_label_entries_positive(self, diamond_graph):
        cover = build_two_hop_cover(diamond_graph)
        assert cover.num_label_entries() > 0

    def test_size_bytes_positive(self, diamond_graph):
        cover = build_two_hop_cover(diamond_graph)
        assert cover.size_bytes() > 0

    def test_two_hop_smaller_than_closure_on_sparse_graph(self):
        """The selling point: 2-hop labels ≪ full closure on large sparse graphs."""
        from repro.graph.transitive_closure import build_transitive_closure_incremental

        graph = random_graph(300, 900, seed=10)
        cover = build_two_hop_cover(graph)
        closure = build_transitive_closure_incremental(graph, backend="sparse")
        assert cover.num_label_entries() < closure.nonzero_entries()


class TestLandmarkOrdering:
    def test_all_orders_give_exact_distances(self):
        graph = random_graph(25, 90, seed=11)
        for order in ("degree", "coverage", "random"):
            cover = build_two_hop_cover(graph, order=order)
            assert_distances_exact(graph, cover, 4)

    def test_degree_order_beats_random_on_hub_graphs(self):
        # star-ish graph: hubs first shrink labels dramatically
        import random as _random

        rng = _random.Random(3)
        graph = DiGraph(60)
        for node in range(5, 60):
            graph.add_edge(node, rng.randrange(5))        # follow a hub
            graph.add_edge(rng.randrange(5), node)        # hub follows back
        degree_cover = build_two_hop_cover(graph, order="degree")
        random_cover = build_two_hop_cover(graph, order="random", seed=9)
        assert degree_cover.num_label_entries() <= random_cover.num_label_entries()

    def test_unknown_order_rejected(self, diamond_graph):
        with pytest.raises(ValueError):
            build_two_hop_cover(diamond_graph, order="alphabetical")
