"""Whole-program layer: ProjectContext graphs, effects, FLOW rules, export."""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.analysis import run_check
from repro.analysis.graph_export import (
    GRAPH_SCHEMA_VERSION,
    render_graph_document,
    validate_graph_document,
    write_graph_document,
)
from repro.analysis.project import ProjectContext


def build_project(tmp_path, modules):
    """Write ``{"pkg/mod.py": source}`` under tmp/src and build a context."""
    for relative, source in modules.items():
        target = tmp_path / "src" / relative
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source))
    return ProjectContext.build([str(tmp_path / "src")], root=str(tmp_path))


def check_tree(tmp_path, modules):
    for relative, source in modules.items():
        target = tmp_path / "src" / relative
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source))
    return run_check([str(tmp_path / "src")], root=str(tmp_path))


def flow_findings(report, rule_id):
    return [f for f in report.findings if f.rule == rule_id]


# ---------------------------------------------------------------------- #
# import graph
# ---------------------------------------------------------------------- #
class TestImportGraph:
    def test_edges_and_importers(self, tmp_path):
        project = build_project(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/a.py": "from pkg.b import helper\n",
                "pkg/b.py": "def helper():\n    return 1\n",
            },
        )
        assert "pkg.b" in project.import_edges()["pkg.a"]
        assert "pkg.a" in project.importers_of("pkg.b")

    def test_cycle_detection(self, tmp_path):
        project = build_project(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/a.py": "import pkg.b\n",
                "pkg/b.py": "import pkg.a\n",
            },
        )
        cycles = project.import_cycles()
        assert ["pkg.a", "pkg.b"] in cycles

    def test_acyclic_tree_has_no_cycles(self, tmp_path):
        project = build_project(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/a.py": "import pkg.b\n",
                "pkg/b.py": "x = 1\n",
            },
        )
        assert project.import_cycles() == []


# ---------------------------------------------------------------------- #
# call resolution
# ---------------------------------------------------------------------- #
class TestCallResolution:
    def test_imported_function_resolves(self, tmp_path):
        project = build_project(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/a.py": (
                    "from pkg.b import helper\n"
                    "def caller():\n"
                    "    return helper()\n"
                ),
                "pkg/b.py": "def helper():\n    return 1\n",
            },
        )
        targets = [t for _, t in project.calls_of("pkg.a.caller")]
        assert "pkg.b.helper" in targets

    def test_self_method_resolves(self, tmp_path):
        project = build_project(
            tmp_path,
            {
                "pkg/a.py": (
                    "class Thing:\n"
                    "    def outer(self):\n"
                    "        return self.inner()\n"
                    "    def inner(self):\n"
                    "        return 1\n"
                ),
            },
        )
        targets = [t for _, t in project.calls_of("pkg.a.Thing.outer")]
        assert "pkg.a.Thing.inner" in targets

    def test_attribute_typed_in_init_resolves(self, tmp_path):
        project = build_project(
            tmp_path,
            {
                "pkg/a.py": (
                    "from pkg.b import Engine\n"
                    "class App:\n"
                    "    def __init__(self):\n"
                    "        self.engine = Engine()\n"
                    "    def run(self):\n"
                    "        return self.engine.spin()\n"
                ),
                "pkg/b.py": (
                    "class Engine:\n"
                    "    def spin(self):\n"
                    "        return 1\n"
                ),
            },
        )
        targets = [t for _, t in project.calls_of("pkg.a.App.run")]
        assert "pkg.b.Engine.spin" in targets

    def test_return_annotation_types_local(self, tmp_path):
        project = build_project(
            tmp_path,
            {
                "pkg/a.py": (
                    "from pkg.b import Engine, get_engine\n"
                    "def run():\n"
                    "    engine = get_engine()\n"
                    "    return engine.spin()\n"
                ),
                "pkg/b.py": (
                    "class Engine:\n"
                    "    def spin(self):\n"
                    "        return 1\n"
                    "def get_engine() -> Engine:\n"
                    "    return Engine()\n"
                ),
            },
        )
        targets = [t for _, t in project.calls_of("pkg.a.run")]
        assert "pkg.b.Engine.spin" in targets

    def test_self_referential_local_does_not_recurse(self, tmp_path):
        # `x = x.narrow()` must not send the resolver into a loop
        project = build_project(
            tmp_path,
            {
                "pkg/a.py": (
                    "def run(x):\n"
                    "    x = x.narrow()\n"
                    "    y = z.f()\n"
                    "    z = y.g()\n"
                    "    return x\n"
                ),
            },
        )
        assert "pkg.a.run" in project.functions

    def test_unresolved_calls_are_recorded(self, tmp_path):
        project = build_project(
            tmp_path,
            {"pkg/a.py": "def f(x):\n    return x.mystery_method()\n"},
        )
        sites = project.unresolved_calls.get("pkg.a.f", [])
        assert any("mystery_method" in site.name for site in sites)


# ---------------------------------------------------------------------- #
# effect summaries
# ---------------------------------------------------------------------- #
class TestMayRaise:
    def test_propagates_through_calls(self, tmp_path):
        project = build_project(
            tmp_path,
            {
                "pkg/a.py": (
                    "from pkg.b import helper\n"
                    "def caller():\n"
                    "    return helper()\n"
                ),
                "pkg/b.py": (
                    "def helper():\n"
                    "    raise ValueError('boom')\n"
                ),
            },
        )
        raised = project.may_raise()
        assert any("ValueError" in r for r in raised["pkg.a.caller"])

    def test_guard_subtracts_caught_types(self, tmp_path):
        project = build_project(
            tmp_path,
            {
                "pkg/a.py": (
                    "from pkg.b import helper\n"
                    "def caller():\n"
                    "    try:\n"
                    "        return helper()\n"
                    "    except ValueError:\n"
                    "        return None\n"
                ),
                "pkg/b.py": (
                    "def helper():\n"
                    "    raise ValueError('boom')\n"
                ),
            },
        )
        raised = project.may_raise()
        assert not any("ValueError" in r for r in raised.get("pkg.a.caller", ()))

    def test_bare_reraise_handler_is_transparent(self, tmp_path):
        # `except ValueError: cleanup(); raise` does NOT swallow the error
        project = build_project(
            tmp_path,
            {
                "pkg/a.py": (
                    "from pkg.b import helper\n"
                    "def caller():\n"
                    "    try:\n"
                    "        return helper()\n"
                    "    except ValueError:\n"
                    "        cleanup()\n"
                    "        raise\n"
                    "def cleanup():\n"
                    "    pass\n"
                ),
                "pkg/b.py": (
                    "def helper():\n"
                    "    raise ValueError('boom')\n"
                ),
            },
        )
        raised = project.may_raise()
        assert any("ValueError" in r for r in raised["pkg.a.caller"])

    def test_subclass_matches_parent_guard(self, tmp_path):
        project = build_project(
            tmp_path,
            {
                "pkg/a.py": (
                    "from pkg.b import helper\n"
                    "def caller():\n"
                    "    try:\n"
                    "        return helper()\n"
                    "    except LookupError:\n"
                    "        return None\n"
                ),
                "pkg/b.py": (
                    "def helper():\n"
                    "    raise KeyError('boom')\n"
                ),
            },
        )
        raised = project.may_raise()
        assert not any("KeyError" in r for r in raised.get("pkg.a.caller", ()))


class TestWallClockTaint:
    def test_taint_flows_through_helpers(self, tmp_path):
        project = build_project(
            tmp_path,
            {
                "pkg/a.py": (
                    "from pkg.b import stamp\n"
                    "def score():\n"
                    "    return stamp()\n"
                ),
                "pkg/b.py": (
                    "import time\n"
                    "def stamp():\n"
                    "    return time.time()\n"
                ),
            },
        )
        tainted = project.wall_clock_taint()
        assert "pkg.a.score" in tainted
        chain = project.taint_chain("pkg.a.score", tainted)
        assert chain[0] == "pkg.a.score"
        assert "pkg.b.stamp" in chain
        assert chain[-1] == "time.time"  # the raw wall-clock source

    def test_pragma_on_source_line_seals_taint(self, tmp_path):
        project = build_project(
            tmp_path,
            {
                "pkg/b.py": (
                    "import time\n"
                    "def stamp():\n"
                    "    return time.time()  # repro: noqa[DET-003] -- boundary\n"
                ),
                "pkg/a.py": (
                    "from pkg.b import stamp\n"
                    "def score():\n"
                    "    return stamp()\n"
                ),
            },
        )
        assert "pkg.a.score" not in project.wall_clock_taint()


# ---------------------------------------------------------------------- #
# FLOW rules end-to-end (run_check over synthetic trees)
# ---------------------------------------------------------------------- #
class TestFlow001:
    def test_flags_taint_entering_scoring_scope(self, tmp_path):
        report = check_tree(
            tmp_path,
            {
                "repro/util/clockish.py": (
                    "import time\n"
                    "def now_stamp():\n"
                    "    return time.time()\n"
                ),
                "repro/core/scorer.py": (
                    "from repro.util.clockish import now_stamp\n"
                    "def score():\n"
                    "    return now_stamp()\n"
                ),
            },
        )
        findings = flow_findings(report, "FLOW-001")
        assert len(findings) == 1
        assert findings[0].path.endswith("repro/core/scorer.py")

    def test_direct_read_in_scope_is_det_not_flow(self, tmp_path):
        # a wall-clock read *inside* scoring scope is DET-003's finding;
        # FLOW-001 only reports taint imported from helpers outside scope
        report = check_tree(
            tmp_path,
            {
                "repro/core/scorer.py": (
                    "import time\n"
                    "def score():\n"
                    "    return time.time()\n"
                ),
            },
        )
        assert flow_findings(report, "FLOW-001") == []
        assert [f.rule for f in report.findings] == ["DET-003"]


class TestFlow002:
    def test_untyped_raise_escaping_boundary_is_flagged(self, tmp_path):
        report = check_tree(
            tmp_path,
            {
                "repro/errors.py": (
                    "class ReproError(Exception):\n"
                    "    pass\n"
                ),
                "repro/core/engine.py": (
                    "def run():\n"
                    "    raise ValueError('bad')\n"
                ),
                "repro/serve/__init__.py": "",
                "repro/serve/handlers.py": (
                    "from repro.core.engine import run\n"
                    "from repro.errors import ReproError\n"
                    "def handle(request):\n"
                    "    try:\n"
                    "        return run()\n"
                    "    except ReproError:\n"
                    "        return None\n"
                ),
            },
        )
        findings = flow_findings(report, "FLOW-002")
        assert len(findings) == 1
        assert findings[0].path.endswith("repro/core/engine.py")
        assert "handle" in findings[0].message

    def test_typed_raise_is_clean(self, tmp_path):
        report = check_tree(
            tmp_path,
            {
                "repro/errors.py": (
                    "class ReproError(Exception):\n"
                    "    pass\n"
                    "class DegradedError(ReproError):\n"
                    "    pass\n"
                ),
                "repro/core/engine.py": (
                    "from repro.errors import DegradedError\n"
                    "def run():\n"
                    "    raise DegradedError('degraded')\n"
                ),
                "repro/serve/__init__.py": "",
                "repro/serve/handlers.py": (
                    "from repro.core.engine import run\n"
                    "from repro.errors import ReproError\n"
                    "def handle(request):\n"
                    "    try:\n"
                    "        return run()\n"
                    "    except ReproError:\n"
                    "        return None\n"
                ),
            },
        )
        assert flow_findings(report, "FLOW-002") == []

    def test_guard_at_boundary_clears_finding(self, tmp_path):
        report = check_tree(
            tmp_path,
            {
                "repro/core/engine.py": (
                    "def run():\n"
                    "    raise ValueError('bad')\n"
                ),
                "repro/serve/__init__.py": "",
                "repro/serve/handlers.py": (
                    "from repro.core.engine import run\n"
                    "def handle(request):\n"
                    "    try:\n"
                    "        return run()\n"
                    "    except ValueError:\n"
                    "        return None\n"
                ),
            },
        )
        assert flow_findings(report, "FLOW-002") == []


class TestFlow003:
    _EPOCH_PRELUDE = (
        "from repro.cache.epochs import Epoch\n"
        "class Store:\n"
        "    def __init__(self):\n"
        "        self.epoch = Epoch()\n"
        "        self._listeners = []\n"
    )

    def test_mutator_without_notify_is_flagged(self, tmp_path):
        report = check_tree(
            tmp_path,
            {
                "repro/cache/__init__.py": "",
                "repro/cache/epochs.py": "class Epoch:\n    def bump(self):\n        pass\n",
                "repro/core/store.py": self._EPOCH_PRELUDE + (
                    "    def add(self, item):\n"
                    "        self.epoch.bump()\n"
                ),
            },
        )
        findings = flow_findings(report, "FLOW-003")
        assert len(findings) == 1
        assert "add" in findings[0].message

    def test_mutator_with_notify_is_clean(self, tmp_path):
        report = check_tree(
            tmp_path,
            {
                "repro/cache/__init__.py": "",
                "repro/cache/epochs.py": "class Epoch:\n    def bump(self):\n        pass\n",
                "repro/core/store.py": self._EPOCH_PRELUDE + (
                    "    def add(self, item):\n"
                    "        self.epoch.bump()\n"
                    "        self._notify()\n"
                    "    def _notify(self):\n"
                    "        for listener in self._listeners:\n"
                    "            listener()\n"
                ),
            },
        )
        assert flow_findings(report, "FLOW-003") == []

    def test_notify_via_delegation_is_clean(self, tmp_path):
        report = check_tree(
            tmp_path,
            {
                "repro/cache/__init__.py": "",
                "repro/cache/epochs.py": "class Epoch:\n    def bump(self):\n        pass\n",
                "repro/core/store.py": self._EPOCH_PRELUDE + (
                    "    def add(self, item):\n"
                    "        self._bump_and_tell()\n"
                    "    def _bump_and_tell(self):\n"
                    "        self.epoch.bump()\n"
                    "        self._notify()\n"
                    "    def _notify(self):\n"
                    "        for listener in self._listeners:\n"
                    "            listener()\n"
                ),
            },
        )
        assert flow_findings(report, "FLOW-003") == []


class TestFlow004:
    def test_dead_import_is_flagged(self, tmp_path):
        report = check_tree(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/a.py": "from pkg.b import helper\nx = 1\n",
                "pkg/b.py": "def helper():\n    return 1\n",
            },
        )
        findings = flow_findings(report, "FLOW-004")
        assert any("helper" in f.message for f in findings)

    def test_dunder_all_reexport_is_not_dead(self, tmp_path):
        report = check_tree(
            tmp_path,
            {
                "pkg/__init__.py": (
                    "from pkg.b import helper\n"
                    "__all__ = ['helper']\n"
                ),
                "pkg/b.py": "def helper():\n    return 1\n",
            },
        )
        assert flow_findings(report, "FLOW-004") == []

    def test_string_annotation_counts_as_use(self, tmp_path):
        # regression: `"OrderedDict[int, Dict[int, float]]"` uses Dict
        report = check_tree(
            tmp_path,
            {
                "pkg/a.py": (
                    "from typing import Dict\n"
                    "class C:\n"
                    "    def __init__(self):\n"
                    '        self.cache: "Dict[int, float]" = {}\n'
                ),
            },
        )
        assert flow_findings(report, "FLOW-004") == []

    def test_import_cycle_is_flagged(self, tmp_path):
        report = check_tree(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/a.py": "import pkg.b\nuse = pkg.b\n",
                "pkg/b.py": "import pkg.a\nuse = pkg.a\n",
            },
        )
        findings = flow_findings(report, "FLOW-004")
        assert any("cycle" in f.message for f in findings)


class TestFlow005:
    def test_set_iteration_feeding_schema_doc_is_flagged(self, tmp_path):
        report = check_tree(
            tmp_path,
            {
                "pkg/export.py": (
                    "def render(items):\n"
                    "    seen = set(items)\n"
                    "    rows = [x for x in seen]\n"
                    "    return {'schema_version': 1, 'rows': rows}\n"
                ),
            },
        )
        findings = flow_findings(report, "FLOW-005")
        assert len(findings) == 1

    def test_sorted_set_is_clean(self, tmp_path):
        report = check_tree(
            tmp_path,
            {
                "pkg/export.py": (
                    "def render(items):\n"
                    "    seen = set(items)\n"
                    "    rows = [x for x in sorted(seen)]\n"
                    "    return {'schema_version': 1, 'rows': rows}\n"
                ),
            },
        )
        assert flow_findings(report, "FLOW-005") == []


# ---------------------------------------------------------------------- #
# graph export
# ---------------------------------------------------------------------- #
class TestGraphExport:
    def _project(self, tmp_path):
        return build_project(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/a.py": (
                    "from pkg.b import helper\n"
                    "def caller():\n"
                    "    return helper()\n"
                ),
                "pkg/b.py": (
                    "def helper():\n"
                    "    raise ValueError('x')\n"
                ),
            },
        )

    def test_document_validates_and_is_deterministic(self, tmp_path):
        project = self._project(tmp_path)
        doc = render_graph_document(project)
        assert validate_graph_document(doc) == []
        assert doc["meta"]["schema_version"] == GRAPH_SCHEMA_VERSION
        assert doc == render_graph_document(project)

    def test_document_content(self, tmp_path):
        doc = render_graph_document(self._project(tmp_path))
        edges = {(e["from"], e["to"]) for e in doc["import_graph"]["edges"]}
        assert ("pkg.a", "pkg.b") in edges
        by_name = {f["qualname"]: f for f in doc["call_graph"]["functions"]}
        targets = {c["target"] for c in by_name["pkg.a.caller"]["calls"]}
        assert "pkg.b.helper" in targets
        effects = {e["qualname"]: e for e in doc["effects"]}
        assert any("ValueError" in r for r in effects["pkg.a.caller"]["may_raise"])

    def test_write_round_trips_through_validator(self, tmp_path):
        project = self._project(tmp_path)
        out = tmp_path / "graph.json"
        write_graph_document(project, str(out))
        loaded = json.loads(out.read_text())
        assert validate_graph_document(loaded) == []

    def test_validator_rejects_tampered_documents(self, tmp_path):
        doc = render_graph_document(self._project(tmp_path))
        doc["meta"]["schema_version"] = 99
        assert validate_graph_document(doc)
        assert validate_graph_document({"meta": {}})
        assert validate_graph_document([])
