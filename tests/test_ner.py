"""Gazetteer NER (longest-cover) tests."""

from repro.text.ner import GazetteerNER


class TestLongestCover:
    def test_prefers_longest_match(self):
        ner = GazetteerNER(["jordan", "michael jordan"])
        found = ner.recognize("michael jordan scores")
        assert [m.surface for m in found] == ["michael jordan"]

    def test_multiple_mentions(self):
        ner = GazetteerNER(["jordan", "chicago bulls"])
        found = ner.recognize("jordan joins the chicago bulls")
        assert [m.surface for m in found] == ["jordan", "chicago bulls"]

    def test_no_overlapping_matches(self):
        # after consuming "michael jordan", "jordan" alone is not re-emitted
        ner = GazetteerNER(["michael jordan", "jordan"])
        found = ner.recognize("michael jordan")
        assert len(found) == 1

    def test_case_insensitive(self):
        ner = GazetteerNER(["Jordan"])
        assert [m.surface for m in ner.recognize("JORDAN wins")] == ["jordan"]

    def test_char_offsets(self):
        ner = GazetteerNER(["chicago bulls"])
        text = "go Chicago Bulls go"
        mention = ner.recognize(text)[0]
        assert text[mention.char_start : mention.char_end] == "Chicago Bulls"

    def test_token_offsets(self):
        ner = GazetteerNER(["bulls"])
        mention = ner.recognize("the bulls win")[0]
        assert (mention.token_start, mention.token_end) == (1, 2)

    def test_unknown_text_yields_nothing(self):
        ner = GazetteerNER(["jordan"])
        assert ner.recognize("nothing to see here") == []

    def test_max_phrase_len_respected(self):
        ner = GazetteerNER(["a b c"], max_phrase_len=2)
        assert ner.recognize("a b c") == []

    def test_handles_and_urls_break_phrases(self):
        ner = GazetteerNER(["michael jordan"])
        # the @handle sits between the words at the token level
        assert ner.recognize("michael @bob jordan") == []


class TestVocabulary:
    def test_len_and_contains(self):
        ner = GazetteerNER(["Jordan", "NBA"])
        assert len(ner) == 2
        assert "jordan" in ner
        assert "JORDAN" in ner
        assert "bulls" not in ner

    def test_add_new_surface(self):
        ner = GazetteerNER(["jordan"])
        ner.add("air jordan")
        assert [m.surface for m in ner.recognize("new air jordan drop")] == [
            "air jordan"
        ]

    def test_blank_entries_ignored(self):
        ner = GazetteerNER(["", "  ", "jordan"])
        assert len(ner) == 1

    def test_invalid_max_phrase_len(self):
        import pytest

        with pytest.raises(ValueError):
            GazetteerNER([], max_phrase_len=0)
