"""Raw-text linking pipeline tests."""

import pytest

from repro.config import DAY, LinkerConfig
from repro.core.linker import SocialTemporalLinker
from repro.core.pipeline import TextLinkingPipeline
from repro.graph.digraph import DiGraph


@pytest.fixture
def linker(tiny_ckb):
    graph = DiGraph(13)
    graph.add_edge(0, 10)  # Alice follows @NBAOfficial
    graph.add_edge(5, 11)  # Bob follows the ML expert
    return SocialTemporalLinker(
        tiny_ckb, graph, config=LinkerConfig(burst_threshold=2, influential_users=2)
    )


class TestAnnotate:
    def test_recognizes_and_links(self, linker):
        pipeline = TextLinkingPipeline(linker)
        annotated = pipeline.annotate(
            "watching jordan with the chicago bulls tonight", user=0, now=100 * DAY
        )
        surfaces = [span.surface for span in annotated.spans]
        assert surfaces == ["jordan", "chicago bulls"]
        assert annotated.spans[0].entity_id == 0  # basketball Jordan for Alice
        assert annotated.spans[1].entity_id == 3
        assert annotated.entities() == [0, 3]

    def test_user_context_changes_annotation(self, linker):
        pipeline = TextLinkingPipeline(linker)
        alice = pipeline.annotate("jordan gave a talk", user=0, now=100 * DAY)
        bob = pipeline.annotate("jordan gave a talk", user=5, now=100 * DAY)
        assert alice.spans[0].entity_id == 0
        assert bob.spans[0].entity_id == 1

    def test_no_mentions(self, linker):
        pipeline = TextLinkingPipeline(linker)
        annotated = pipeline.annotate("nothing relevant here", user=0, now=0.0)
        assert annotated.spans == []
        assert annotated.entities() == []

    def test_char_offsets_preserved(self, linker):
        pipeline = TextLinkingPipeline(linker)
        text = "go Jordan go"
        annotated = pipeline.annotate(text, user=0, now=100 * DAY)
        span = annotated.spans[0]
        assert text[span.mention.char_start : span.mention.char_end] == "Jordan"

    def test_render(self, linker, tiny_kb):
        pipeline = TextLinkingPipeline(linker)
        annotated = pipeline.annotate("jordan", user=0, now=100 * DAY)
        rendered = annotated.render(tiny_kb)
        assert "jordan ->" in rendered
        empty = pipeline.annotate("zzz", user=0, now=0.0)
        assert empty.render(tiny_kb) == "(no entities)"


class TestAbstention:
    def test_no_interest_spans_unlinked(self, linker):
        pipeline = TextLinkingPipeline(linker, abstain_below_bound=True)
        # user 6 is isolated: all candidates score <= beta + gamma
        annotated = pipeline.annotate("jordan", user=6, now=100 * DAY)
        assert annotated.spans[0].entity_id is None

    def test_confident_spans_still_linked(self, linker):
        pipeline = TextLinkingPipeline(linker, abstain_below_bound=True)
        annotated = pipeline.annotate("jordan", user=0, now=100 * DAY)
        assert annotated.spans[0].entity_id == 0


class TestAutoConfirm:
    def test_feedback_updates_kb(self, linker, tiny_ckb):
        pipeline = TextLinkingPipeline(linker, auto_confirm=True)
        before = tiny_ckb.count(0)
        pipeline.annotate("jordan", user=0, now=100 * DAY)
        assert tiny_ckb.count(0) == before + 1

    def test_no_feedback_by_default(self, linker, tiny_ckb):
        pipeline = TextLinkingPipeline(linker)
        before = tiny_ckb.count(0)
        pipeline.annotate("jordan", user=0, now=100 * DAY)
        assert tiny_ckb.count(0) == before


class TestStream:
    def test_annotate_stream_on_world(self, small_context):
        linker = small_context.social_temporal()._linker
        pipeline = TextLinkingPipeline(linker)
        tweets = small_context.test_dataset.tweets[:40]
        annotated = list(pipeline.annotate_stream(tweets))
        assert len(annotated) == 40
        # NER over generated text recovers most planted mentions and the
        # linker resolves a solid share of them to the true entity
        total = correct = 0
        for tweet, annotation in zip(tweets, annotated):
            truths = {m.surface: m.true_entity for m in tweet.mentions}
            for span in annotation.spans:
                if span.surface in truths:
                    total += 1
                    if span.entity_id == truths[span.surface]:
                        correct += 1
        assert total > 0
        assert correct / total > 0.45
