"""Activity-based dataset split (Table 2) tests."""

import random

import pytest

from repro.stream.dataset import PAPER_THRESHOLDS, split_by_activity
from repro.stream.tweet import MentionSpan, Tweet


def make_tweets(counts):
    """counts: {user: number of tweets}."""
    tweets = []
    tweet_id = 0
    for user, count in counts.items():
        for i in range(count):
            tweets.append(
                Tweet(
                    tweet_id=tweet_id,
                    user=user,
                    timestamp=float(tweet_id),
                    text="x",
                    mentions=(MentionSpan("x", true_entity=0),),
                )
            )
            tweet_id += 1
    return tweets


class TestSplit:
    def test_threshold_is_strictly_greater(self):
        tweets = make_tweets({1: 10, 2: 11})
        catalog = split_by_activity(tweets, thresholds=(10,))
        d10 = catalog.dataset(10)
        assert d10.users == frozenset({2})  # "more than θ postings"

    def test_nested_datasets(self, small_world):
        catalog = split_by_activity(small_world.tweets)
        previous_users = None
        for threshold in sorted(PAPER_THRESHOLDS):
            users = catalog.dataset(threshold).users
            if previous_users is not None:
                assert users <= previous_users
            previous_users = users

    def test_test_set_only_inactive_users(self):
        tweets = make_tweets({1: 3, 2: 50, 3: 9, 4: 10})
        catalog = split_by_activity(tweets, inactive_below=10)
        assert catalog.test.users == frozenset({1, 3})

    def test_test_user_cap(self):
        tweets = make_tweets({u: 2 for u in range(500)})
        catalog = split_by_activity(
            tweets, test_user_cap=100, rng=random.Random(0)
        )
        assert catalog.test.num_users == 100

    def test_exclude_users(self):
        tweets = make_tweets({1: 3, 2: 3})
        catalog = split_by_activity(tweets, exclude_users={1})
        assert catalog.test.users == frozenset({2})

    def test_unknown_threshold_raises(self):
        catalog = split_by_activity(make_tweets({1: 5}))
        with pytest.raises(KeyError):
            catalog.dataset(42)

    def test_chronological_output(self, small_world):
        catalog = split_by_activity(small_world.tweets)
        for dataset in list(catalog.by_threshold.values()) + [catalog.test]:
            timestamps = [t.timestamp for t in dataset.tweets]
            assert timestamps == sorted(timestamps)


class TestStats:
    def test_stats_row(self):
        tweets = make_tweets({1: 4})
        catalog = split_by_activity(tweets, thresholds=(1,))
        row = catalog.dataset(1).stats_row()
        assert row["users"] == 1
        assert row["tweets"] == 4
        assert row["mentions_per_tweet"] == 1.0
        assert row["tweets_per_user"] == 4.0

    def test_table2_rows_order(self, small_world):
        catalog = split_by_activity(small_world.tweets)
        rows = catalog.table2_rows()
        assert [r["name"] for r in rows] == ["D10", "D30", "D50", "D70", "D90", "Dtest"]

    def test_empty_dataset_stats(self):
        catalog = split_by_activity([], thresholds=(10,))
        row = catalog.dataset(10).stats_row()
        assert row["tweets"] == 0
        assert row["mentions_per_tweet"] == 0.0
