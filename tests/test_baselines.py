"""On-the-fly and collective baseline tests."""

import pytest

from repro.baselines.collective import CollectiveLinker
from repro.baselines.common import IntraTweetScorer, other_candidates
from repro.baselines.onthefly import OnTheFlyLinker
from repro.config import DAY
from repro.kb.complemented import ComplementedKnowledgebase
from repro.stream.tweet import MentionSpan, Tweet


def make_tweet(tweet_id, user, text, surfaces, timestamp=0.0):
    return Tweet(
        tweet_id=tweet_id,
        user=user,
        timestamp=timestamp,
        text=text,
        mentions=tuple(MentionSpan(s) for s in surfaces),
    )


class TestIntraTweetScorer:
    def test_popularity_prior(self, tiny_ckb):
        scorer = IntraTweetScorer(tiny_ckb)
        prior = scorer.popularity_prior([0, 1, 2])
        assert prior[0] == pytest.approx(10 / 17)

    def test_context_similarity_prefers_topical_description(self, tiny_ckb):
        scorer = IntraTweetScorer(tiny_ckb)
        scores = scorer.context_similarity([0, 1], "icml inference talk")
        assert scores[1] > scores[0]

    def test_coherence_votes_through_wlm(self, tiny_ckb):
        scorer = IntraTweetScorer(tiny_ckb)
        # other mention is unambiguous "chicago bulls" -> votes for e0
        coherence = scorer.coherence([0, 1, 2], [[3]])
        assert coherence[0] > coherence[1]

    def test_single_mention_no_coherence(self, tiny_ckb):
        scorer = IntraTweetScorer(tiny_ckb)
        coherence = scorer.coherence([0, 1], [])
        assert coherence == {0: 0.0, 1: 0.0}

    def test_other_candidates_helper(self):
        sets = [(1,), (2,), (3,)]
        assert other_candidates(sets, 1) == [(1,), (3,)]

    def test_relatedness_cached_and_symmetric(self, tiny_ckb):
        scorer = IntraTweetScorer(tiny_ckb)
        assert scorer.relatedness(0, 3) == scorer.relatedness(3, 0)


class TestOnTheFlyLinker:
    def test_coherence_disambiguates(self, tiny_ckb):
        linker = OnTheFlyLinker(tiny_ckb)
        tweet = make_tweet(1, 99, "jordan chicago bulls", ["jordan", "chicago bulls"])
        predictions = linker.link_tweet(tweet)
        assert predictions == [0, 3]

    def test_context_disambiguates(self, tiny_ckb):
        linker = OnTheFlyLinker(tiny_ckb)
        tweet = make_tweet(1, 99, "jordan icml inference model talk", ["jordan"])
        assert linker.link_tweet(tweet) == [1]

    def test_unknown_mention_gives_none(self, tiny_ckb):
        linker = OnTheFlyLinker(tiny_ckb)
        tweet = make_tweet(1, 99, "qqq", ["qqqqqq"])
        assert linker.link_tweet(tweet) == [None]

    def test_popularity_fallback_without_context(self, tiny_ckb):
        linker = OnTheFlyLinker(tiny_ckb)
        tweet = make_tweet(1, 99, "jordan", ["jordan"])
        assert linker.link_tweet(tweet) == [0]  # most popular candidate


class TestCollectiveLinker:
    def test_inter_tweet_interest_propagates(self, tiny_ckb):
        """A user's unambiguous ML tweets should pull her ambiguous
        "jordan" mention toward the ML entity."""
        linker = CollectiveLinker(tiny_ckb)
        tweets = [
            make_tweet(1, 50, "icml paper accepted", ["icml"]),
            make_tweet(2, 50, "machine learning rocks", ["machine learning"]),
            make_tweet(3, 50, "jordan gave a talk", ["jordan"]),
        ]
        predictions = linker.link_user(tweets)
        assert predictions[1] == [5]
        assert predictions[2] == [6]
        assert predictions[3] == [1]

    def test_single_tweet_batch(self, tiny_ckb):
        linker = CollectiveLinker(tiny_ckb)
        tweet = make_tweet(7, 50, "jordan", ["jordan"])
        assert linker.link_tweet(tweet) == [0]  # popularity prior fallback

    def test_empty_batch(self, tiny_ckb):
        linker = CollectiveLinker(tiny_ckb)
        assert linker.link_user([]) == {}

    def test_bad_damping_rejected(self, tiny_ckb):
        with pytest.raises(ValueError):
            CollectiveLinker(tiny_ckb, damping=1.5)

    def test_complement_kb_records_links(self, tiny_kb):
        ckb = ComplementedKnowledgebase(tiny_kb)
        linker = CollectiveLinker(ckb)
        tweets = [
            make_tweet(1, 50, "icml paper", ["icml"], timestamp=DAY),
            make_tweet(2, 60, "nba game", ["nba"], timestamp=2 * DAY),
        ]
        linked = linker.complement_kb(tweets)
        assert linked == 2
        assert ckb.count(5) == 1
        assert ckb.count(4) == 1
        assert ckb.tweets_of(5)[0].user == 50
