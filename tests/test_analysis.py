"""Tests of the ``repro check`` static-analysis subsystem.

Each rule gets at least one violating fixture snippet (the rule fires)
and one clean snippet (the rule stays quiet), so a rule that silently
stops matching — an ``ast`` API change, a refactor of the rule pack —
fails here before it fails to protect the tree.  The meta-test at the
bottom runs the real analyzer over the repo's own ``src/`` and asserts
the strict gate is green: the repo must always pass its own linter.
"""

from __future__ import annotations

import json
import os
import textwrap

import pytest

from repro.analysis import (
    Baseline,
    BaselineEntry,
    CheckReport,
    FileContext,
    Severity,
    all_rules,
    parse_pragmas,
    render_json,
    render_text,
    run_check,
    validate_check_document,
)
from repro.analysis.framework import iter_python_files
from repro.analysis.reporters import SCHEMA_VERSION, findings_from_document

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

_RULES = {rule.id: rule for rule in all_rules()}


def check_snippet(rule_id: str, source: str, path: str = "src/repro/core/fake.py"):
    """Run one rule over a dedented snippet parsed as ``path``."""
    ctx = FileContext.parse(path, textwrap.dedent(source))
    return list(_RULES[rule_id].check(ctx))


# ---------------------------------------------------------------------- #
# rule fixtures: one violating + one clean snippet per rule
# ---------------------------------------------------------------------- #
class TestDeterminismRules:
    def test_det001_flags_unseeded_random(self):
        findings = check_snippet(
            "DET-001",
            """
            import random
            rng = random.Random()
            """,
        )
        assert len(findings) == 1
        assert findings[0].rule == "DET-001"
        assert findings[0].line == 3

    def test_det001_flags_unseeded_bare_import(self):
        findings = check_snippet(
            "DET-001",
            """
            from random import Random
            rng = Random()
            """,
        )
        assert len(findings) == 1

    def test_det001_clean_when_seeded(self):
        assert not check_snippet(
            "DET-001",
            """
            import random
            rng = random.Random(11)
            other = random.Random(seed)
            """,
        )

    def test_det002_flags_module_level_random_call(self):
        findings = check_snippet(
            "DET-002",
            """
            import random
            value = random.random()
            random.shuffle(items)
            """,
        )
        assert {f.line for f in findings} == {3, 4}

    def test_det002_flags_stateful_from_import(self):
        findings = check_snippet(
            "DET-002",
            """
            from random import shuffle
            """,
        )
        assert len(findings) == 1
        assert "shuffle" in findings[0].message

    def test_det002_clean_for_instance_methods(self):
        assert not check_snippet(
            "DET-002",
            """
            import random
            from random import Random
            rng = random.Random(7)
            rng.shuffle(items)
            value = rng.random()
            """,
        )

    def test_det003_flags_wall_clock_in_scoring_path(self):
        findings = check_snippet(
            "DET-003",
            """
            import time
            import datetime

            def score(x):
                now = time.time()
                stamp = datetime.datetime.now()
                return now
            """,
            path="src/repro/core/scoring_fake.py",
        )
        assert {f.line for f in findings} == {6, 7}

    def test_det003_flags_from_import_datetime(self):
        findings = check_snippet(
            "DET-003",
            """
            from datetime import datetime

            def stamp():
                return datetime.now()
            """,
            path="src/repro/eval/fake.py",
        )
        assert len(findings) == 1

    def test_det003_allows_monotonic_timing(self):
        assert not check_snippet(
            "DET-003",
            """
            import time

            def timed(fn):
                start = time.perf_counter()
                fn()
                return time.monotonic() - start
            """,
            path="src/repro/core/fake.py",
        )

    def test_det003_out_of_scope_module_is_clean(self):
        # serving-side code (stream, resilience, cli) may read clocks
        assert not check_snippet(
            "DET-003",
            """
            import time
            now = time.time()
            """,
            path="src/repro/stream/fake.py",
        )


class TestErrorTaxonomyRules:
    def test_err001_flags_bare_except(self):
        findings = check_snippet(
            "ERR-001",
            """
            try:
                work()
            except:
                pass
            """,
        )
        assert len(findings) == 1

    def test_err001_flags_base_exception(self):
        findings = check_snippet(
            "ERR-001",
            """
            try:
                work()
            except BaseException:
                pass
            """,
        )
        assert len(findings) == 1

    def test_err001_clean_for_named_types(self):
        assert not check_snippet(
            "ERR-001",
            """
            try:
                work()
            except ValueError:
                pass
            """,
        )

    def test_err002_flags_broad_except(self):
        findings = check_snippet(
            "ERR-002",
            """
            try:
                work()
            except Exception as exc:
                log(exc)
            """,
        )
        assert len(findings) == 1

    def test_err002_flags_exception_inside_tuple(self):
        findings = check_snippet(
            "ERR-002",
            """
            try:
                work()
            except (ValueError, Exception):
                pass
            """,
        )
        assert len(findings) == 1

    def test_err002_clean_for_taxonomy_types(self):
        assert not check_snippet(
            "ERR-002",
            """
            from repro.errors import ReproError

            try:
                work()
            except ReproError:
                pass
            """,
        )

    def test_err003_flags_generic_raise(self):
        findings = check_snippet(
            "ERR-003",
            """
            def f():
                raise RuntimeError("broken")
            """,
        )
        assert len(findings) == 1

    def test_err003_clean_for_taxonomy_and_contract_errors(self):
        assert not check_snippet(
            "ERR-003",
            """
            from repro.errors import IndexUnavailableError

            def f(x):
                if x < 0:
                    raise ValueError("x must be non-negative")
                raise IndexUnavailableError("index down")
            """,
        )

    def test_err003_ignores_re_raise(self):
        assert not check_snippet(
            "ERR-003",
            """
            try:
                work()
            except ValueError:
                raise
            """,
        )


class TestParallelSafetyRules:
    def test_par001_flags_module_level_container(self):
        findings = check_snippet(
            "PAR-001",
            """
            _CACHE = {}
            """,
            path="src/repro/core/parallel.py",
        )
        assert len(findings) == 1

    def test_par001_allows_none_slot_and_dunder(self):
        assert not check_snippet(
            "PAR-001",
            """
            from typing import Optional

            __all__ = ["thing"]
            _WORKER_STATE: Optional[object] = None
            """,
            path="src/repro/core/parallel.py",
        )

    def test_par001_out_of_scope_module_is_clean(self):
        assert not check_snippet(
            "PAR-001",
            """
            _CACHE = {}
            """,
            path="src/repro/eval/fake.py",
        )

    def test_par002_flags_mutation_without_refresh(self):
        findings = check_snippet(
            "PAR-002",
            """
            def apply(linker, result, tweet):
                linker.confirm_link(result, tweet.user, tweet.timestamp)
            """,
            path="src/repro/parallelism.py",
        )
        assert len(findings) == 1

    def test_par002_clean_when_refresh_defined(self):
        assert not check_snippet(
            "PAR-002",
            """
            class Pool:
                def refresh(self):
                    self._pool = None

                def apply(self, linker, result, tweet):
                    linker.confirm_link(result, tweet.user, tweet.timestamp)
            """,
            path="src/repro/parallelism.py",
        )

    def test_par003_flags_pickle_in_link_batch(self):
        findings = check_snippet(
            "PAR-003",
            """
            import pickle

            class Linker:
                def link_batch(self, requests):
                    blob = pickle.dumps(self._spec)
                    return self._pool.map(blob, requests)
            """,
            path="src/repro/core/parallel.py",
        )
        assert len(findings) == 1
        assert "hot path" in findings[0].message

    def test_par003_flags_bare_from_import(self):
        findings = check_snippet(
            "PAR-003",
            """
            from pickle import loads

            def _link_shard(shard):
                return loads(shard)
            """,
            path="src/repro/parallelism.py",
        )
        assert len(findings) == 1

    def test_par003_allows_pickle_outside_per_batch_paths(self):
        assert not check_snippet(
            "PAR-003",
            """
            import pickle

            class Pool:
                def refresh(self):
                    blob = pickle.dumps(self._delta)
                    self._pool.broadcast_bytes(blob)
            """,
            path="src/repro/core/parallel.py",
        )

    def test_par003_ignores_other_modules(self):
        assert not check_snippet(
            "PAR-003",
            """
            import pickle

            def link_batch(requests):
                return pickle.dumps(requests)
            """,
            path="src/repro/kb/checkpoint.py",
        )

    def test_par003_ignores_json_dumps(self):
        assert not check_snippet(
            "PAR-003",
            """
            import json

            def link_batch(requests):
                return json.dumps(requests)
            """,
            path="src/repro/core/parallel.py",
        )


class TestNumericRules:
    def test_num001_flags_float_equality_on_scores(self):
        findings = check_snippet(
            "NUM-001",
            """
            def tie(a, b):
                return a.score == b.score
            """,
        )
        assert len(findings) == 1

    def test_num001_flags_nonzero_float_literal(self):
        findings = check_snippet(
            "NUM-001",
            """
            def f(x):
                return x != 0.5
            """,
        )
        assert len(findings) == 1

    def test_num001_allows_exact_zero_guard(self):
        assert not check_snippet(
            "NUM-001",
            """
            def f(total, score):
                if total == 0.0:
                    return 0.0
                return score / total
            """,
        )

    def test_num001_out_of_scope_module_is_clean(self):
        assert not check_snippet(
            "NUM-001",
            """
            def f(a, b):
                return a.score == b.score
            """,
            path="src/repro/stream/fake.py",
        )


class TestCacheRules:
    def test_cache001_flags_mutator_without_bump(self):
        findings = check_snippet(
            "CACHE-001",
            """
            from repro.cache.epochs import Epoch

            class Store:
                def __init__(self):
                    self.epoch = Epoch()
                    self._links = []

                def link_tweet(self, entity_id, user, timestamp):
                    self._links.append((entity_id, user, timestamp))
            """,
        )
        assert len(findings) == 1
        assert findings[0].rule == "CACHE-001"
        assert "link_tweet" in findings[0].message

    def test_cache001_clean_when_mutator_bumps(self):
        assert not check_snippet(
            "CACHE-001",
            """
            from repro.cache.epochs import Epoch

            class Store:
                def __init__(self):
                    self.epoch = Epoch()
                    self._links = []

                def link_tweet(self, entity_id, user, timestamp):
                    self._links.append((entity_id, user, timestamp))
                    self.epoch.bump()
            """,
        )

    def test_cache001_accepts_delegation_to_another_mutator(self):
        """bulk_link -> link_tweet and add_entity -> add_surface_form are
        the repo's real shapes: the bump happens one call down."""
        assert not check_snippet(
            "CACHE-001",
            """
            from repro.cache.epochs import Epoch

            class Store:
                def __init__(self):
                    self.epoch = Epoch()

                def link_tweet(self, entity_id, user, timestamp):
                    self.epoch.bump()

                def bulk_link(self, links):
                    for entity_id, user, timestamp in links:
                        self.link_tweet(entity_id, user, timestamp)
            """,
        )

    def test_cache001_skips_modules_without_epoch(self):
        """A facade that wraps an epoch-owning structure is out of scope:
        its delegated calls bump the owner's epoch transitively."""
        assert not check_snippet(
            "CACHE-001",
            """
            class Facade:
                def __init__(self, graph):
                    self._graph = graph

                def add_edge(self, u, v):
                    return self._graph.add_edge(u, v)

                def remove_edge(self, u, v):
                    self._edges.discard((u, v))
            """,
        )

    def test_cache001_flags_each_non_bumping_mutator(self):
        findings = check_snippet(
            "CACHE-001",
            """
            from repro.cache.epochs import Epoch

            class Graph:
                def __init__(self):
                    self.epoch = Epoch()
                    self._edges = set()

                def add_edge(self, u, v):
                    self._edges.add((u, v))

                def remove_edge(self, u, v):
                    self._edges.discard((u, v))

                def out_degree(self, u):
                    return len(self._edges)
            """,
        )
        assert sorted("add_edge" in f.message or "remove_edge" in f.message
                      for f in findings) == [True, True]


class TestApiRules:
    def test_api001_flags_mutable_defaults(self):
        findings = check_snippet(
            "API-001",
            """
            def f(items=[], lookup={}, tags=set()):
                return items
            """,
        )
        assert len(findings) == 3

    def test_api001_clean_for_none_and_tuple(self):
        assert not check_snippet(
            "API-001",
            """
            def f(items=None, tags=(), name="x"):
                return items
            """,
        )

    def test_api002_flags_shadowing_bindings(self):
        findings = check_snippet(
            "API-002",
            """
            def f(list, type=None):
                id = 3
                return list, id

            def next():
                pass
            """,
        )
        assert len(findings) == 4

    def test_api002_allows_class_attributes_and_methods(self):
        assert not check_snippet(
            "API-002",
            """
            class Rule:
                id = "DET-001"

                def map(self, fn, items):
                    return [fn(item) for item in items]
            """,
        )

    def test_api003_flags_init_without_dunder_all(self, tmp_path):
        package = tmp_path / "src" / "fake"
        package.mkdir(parents=True)
        init = package / "__init__.py"
        init.write_text("from fake.core import thing\n")
        findings = check_snippet(
            "API-003",
            init.read_text(),
            path="src/fake/__init__.py",
        )
        assert len(findings) == 1

    def test_api003_clean_with_dunder_all(self):
        assert not check_snippet(
            "API-003",
            """
            from fake.core import thing

            __all__ = ["thing"]
            """,
            path="src/fake/__init__.py",
        )

    def test_api003_empty_init_is_clean(self):
        assert not check_snippet("API-003", "", path="src/fake/__init__.py")


# ---------------------------------------------------------------------- #
# pragmas
# ---------------------------------------------------------------------- #
class TestPragmas:
    def test_parse_extracts_rules_and_justification(self):
        pragmas = parse_pragmas(
            ["x = 1", "y = f()  # repro: noqa[DET-001,ERR-002] -- boundary"]
        )
        assert list(pragmas) == [2]
        assert pragmas[2].rules == {"DET-001", "ERR-002"}
        assert pragmas[2].justification == "boundary"
        assert pragmas[2].covers("DET-001")
        assert not pragmas[2].covers("NUM-001")

    def test_wildcard_covers_everything(self):
        pragmas = parse_pragmas(["f()  # repro: noqa[*] -- generated code"])
        assert pragmas[1].covers("API-002")

    def test_pragma_suppresses_matching_finding(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(
            "import random\n"
            "rng = random.Random()  # repro: noqa[DET-001] -- fixture\n"
        )
        report = run_check([str(target)], root=str(tmp_path))
        assert report.findings == []
        assert len(report.suppressed_pragma) == 1
        assert report.suppressed_pragma[0].rule == "DET-001"

    def test_pragma_for_other_rule_does_not_suppress(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(
            "import random\n"
            "rng = random.Random()  # repro: noqa[ERR-002] -- wrong rule\n"
        )
        report = run_check([str(target)], root=str(tmp_path))
        assert [f.rule for f in report.findings] == ["DET-001"]

    def test_pragma_without_justification_is_ana001(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(
            "import random\n"
            "rng = random.Random()  # repro: noqa[DET-001]\n"
        )
        report = run_check([str(target)], root=str(tmp_path))
        # suppression still applies, but the missing "why" fails the gate
        assert [f.rule for f in report.findings] == ["ANA-001"]
        assert len(report.suppressed_pragma) == 1
        assert report.exit_code(strict=True) == 1


# ---------------------------------------------------------------------- #
# baseline
# ---------------------------------------------------------------------- #
class TestBaseline:
    def test_round_trip(self, tmp_path):
        entries = [
            BaselineEntry(
                path="src/repro/core/fake.py",
                rule="NUM-001",
                line_text="return a.score == b.score",
                justification="pre-dates NUM-001",
            )
        ]
        path = tmp_path / "baseline.json"
        Baseline(entries).save(str(path))
        loaded = Baseline.load(str(path))
        assert loaded.entries == entries

    def test_load_rejects_missing_justification(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(
            json.dumps(
                {
                    "schema_version": 1,
                    "entries": [
                        {
                            "path": "a.py",
                            "rule": "NUM-001",
                            "line_text": "x == y",
                            "justification": "  ",
                        }
                    ],
                }
            )
        )
        with pytest.raises(ValueError, match="justification"):
            Baseline.load(str(path))

    def test_load_rejects_wrong_schema_version(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"schema_version": 99, "entries": []}))
        with pytest.raises(ValueError, match="schema_version"):
            Baseline.load(str(path))

    def test_baseline_suppresses_matching_line(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text("import random\nrng = random.Random()\n")
        baseline = Baseline(
            [
                BaselineEntry(
                    path="mod.py",
                    rule="DET-001",
                    line_text="rng = random.Random()",
                    justification="grandfathered fixture",
                )
            ]
        )
        report = run_check([str(target)], root=str(tmp_path), baseline=baseline)
        assert report.findings == []
        assert [f.rule for f in report.suppressed_baseline] == ["DET-001"]

    def test_edited_line_revokes_baseline(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text("import random\nrng = random.Random()  # edited\n")
        baseline = Baseline(
            [
                BaselineEntry(
                    path="mod.py",
                    rule="DET-001",
                    line_text="rng = random.Random()",
                    justification="grandfathered fixture",
                )
            ]
        )
        report = run_check([str(target)], root=str(tmp_path), baseline=baseline)
        assert [f.rule for f in report.findings] == ["DET-001"]


# ---------------------------------------------------------------------- #
# framework / driver
# ---------------------------------------------------------------------- #
class TestFramework:
    def test_syntax_error_becomes_ana002(self, tmp_path):
        target = tmp_path / "broken.py"
        target.write_text("def f(:\n")
        report = run_check([str(target)], root=str(tmp_path))
        assert [f.rule for f in report.findings] == ["ANA-002"]
        assert report.exit_code() == 1

    def test_exit_codes_by_severity(self, tmp_path):
        # API-002 is warning severity: non-strict passes, strict fails
        target = tmp_path / "mod.py"
        target.write_text("def f(list):\n    return list\n")
        report = run_check([str(target)], root=str(tmp_path))
        assert [f.rule for f in report.findings] == ["API-002"]
        assert report.exit_code(strict=False) == 0
        assert report.exit_code(strict=True) == 1

    def test_findings_are_sorted_and_deterministic(self, tmp_path):
        (tmp_path / "b.py").write_text("import random\nx = random.Random()\n")
        (tmp_path / "a.py").write_text("def f(items=[]):\n    return items\n")
        first = run_check([str(tmp_path)], root=str(tmp_path))
        second = run_check([str(tmp_path)], root=str(tmp_path))
        assert first.findings == second.findings
        assert [f.path for f in first.findings] == ["a.py", "b.py"]

    def test_iter_python_files_deduplicates(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text("x = 1\n")
        files = list(iter_python_files([str(target), str(tmp_path)]))
        assert files == [str(target)]

    def test_every_rule_has_id_severity_summary(self):
        for rule in all_rules():
            assert rule.id and rule.summary
            assert isinstance(rule.severity, Severity)

    def test_rule_ids_are_unique_and_sorted(self):
        ids = [rule.id for rule in all_rules()]
        assert ids == sorted(ids)
        assert len(ids) == len(set(ids))


# ---------------------------------------------------------------------- #
# reporters
# ---------------------------------------------------------------------- #
class TestReporters:
    @pytest.fixture
    def report(self, tmp_path):
        (tmp_path / "mod.py").write_text(
            "import random\nrng = random.Random()\n"
        )
        return run_check([str(tmp_path)], root=str(tmp_path))

    def test_text_reporter_is_grep_able(self, report):
        text = render_text(report)
        assert "mod.py:2:6: DET-001 [error]" in text
        assert "FAIL: 1 finding(s)" in text

    def test_json_document_validates(self, report):
        document = render_json(report, strict=True, paths=["src"])
        assert validate_check_document(document) == []
        assert document["summary"]["errors"] == 1
        assert document["summary"]["exit_code"] == 1
        assert document["meta"]["strict"] is True

    def test_json_round_trips_findings(self, report):
        document = render_json(report)
        rehydrated = findings_from_document(
            json.loads(json.dumps(document))
        )
        assert rehydrated == report.findings

    def test_validator_rejects_broken_documents(self):
        assert validate_check_document([]) == ["document is not a JSON object"]
        problems = validate_check_document({"meta": {"schema_version": 0}})
        assert any("schema_version" in p for p in problems)
        assert any("rules" in p for p in problems)

    def test_clean_report_exit_zero(self, tmp_path):
        (tmp_path / "clean.py").write_text("VALUE = 1\n")
        report = run_check([str(tmp_path)], root=str(tmp_path))
        document = render_json(report, strict=True)
        assert document["summary"]["exit_code"] == 0
        assert "OK: 0 finding(s)" in render_text(report, strict=True)


# ---------------------------------------------------------------------- #
# CLI
# ---------------------------------------------------------------------- #
class TestCheckCommand:
    def test_check_json_on_violating_tree(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main

        (tmp_path / "mod.py").write_text("import random\nx = random.Random()\n")
        monkeypatch.chdir(tmp_path)
        code = main(["check", "mod.py", "--strict", "--format", "json"])
        document = json.loads(capsys.readouterr().out)
        assert code == 1
        assert validate_check_document(document) == []
        assert [f["rule"] for f in document["findings"]] == ["DET-001"]

    def test_check_respects_baseline_flag(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main

        (tmp_path / "mod.py").write_text("import random\nx = random.Random()\n")
        baseline = tmp_path / "baseline.json"
        Baseline(
            [
                BaselineEntry(
                    path="mod.py",
                    rule="DET-001",
                    line_text="x = random.Random()",
                    justification="fixture",
                )
            ]
        ).save(str(baseline))
        monkeypatch.chdir(tmp_path)
        code = main(
            ["check", "mod.py", "--strict", "--baseline", str(baseline)]
        )
        assert code == 0
        assert "1 baseline" in capsys.readouterr().out

    def test_write_baseline_then_pass(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main

        (tmp_path / "mod.py").write_text("import random\nx = random.Random()\n")
        baseline = tmp_path / "baseline.json"
        monkeypatch.chdir(tmp_path)
        code = main(
            ["check", "mod.py", "--baseline", str(baseline), "--write-baseline"]
        )
        assert code == 0
        capsys.readouterr()
        # the TODO justification is a placeholder a human must replace;
        # the written file itself round-trips and suppresses the finding
        code = main(["check", "mod.py", "--strict", "--baseline", str(baseline)])
        assert code == 0


# ---------------------------------------------------------------------- #
# the repo checks itself
# ---------------------------------------------------------------------- #
class TestRepoIsClean:
    def test_strict_gate_green_on_src(self, monkeypatch):
        """`repro check --strict` must exit 0 on the repo's own tree."""
        monkeypatch.chdir(REPO_ROOT)
        report = run_check(["src"])
        assert report.findings == [], render_text(report, strict=True)
        assert report.exit_code(strict=True) == 0
        assert report.files_scanned >= 80

    def test_every_repo_pragma_is_justified(self, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        for path in iter_python_files(["src"]):
            with open(path, "r", encoding="utf-8") as handle:
                pragmas = parse_pragmas(handle.read().splitlines())
            for pragma in pragmas.values():
                assert pragma.justification, (
                    f"{path}:{pragma.line} pragma has no justification"
                )

    def test_cli_check_strict_json_on_src(self, monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.chdir(REPO_ROOT)
        code = main(["check", "src", "--strict", "--format", "json"])
        document = json.loads(capsys.readouterr().out)
        assert code == 0, document["findings"]
        assert validate_check_document(document) == []
        assert document["summary"]["findings"] == 0


# ---------------------------------------------------------------------- #
# deterministic traversal (overlapping path specs)
# ---------------------------------------------------------------------- #
class TestTraversal:
    def test_overlapping_path_spellings_dedupe(self, tmp_path, monkeypatch):
        package = tmp_path / "src" / "pkg"
        package.mkdir(parents=True)
        (package / "b.py").write_text("x = 1\n")
        (package / "a.py").write_text("y = 2\n")
        monkeypatch.chdir(tmp_path)
        # "src", "./src" and a direct file path all name the same files
        files = list(iter_python_files(["src", "./src", "src/pkg/a.py"]))
        assert files == ["src/pkg/a.py", "src/pkg/b.py"]

    def test_order_is_sorted_and_stable(self, tmp_path):
        for name in ("c.py", "a.py", "b.py"):
            (tmp_path / name).write_text("x = 1\n")
        first = list(iter_python_files([str(tmp_path)]))
        assert [os.path.basename(p) for p in first] == ["a.py", "b.py", "c.py"]
        assert first == list(iter_python_files([str(tmp_path)]))


# ---------------------------------------------------------------------- #
# pragma anchoring on multi-line statements
# ---------------------------------------------------------------------- #
class TestPragmaAnchoring:
    def test_first_line_pragma_covers_continuation_finding(self, tmp_path):
        target = tmp_path / "src" / "repro" / "core" / "mod.py"
        target.parent.mkdir(parents=True)
        target.write_text(
            "import time\n"
            "value = compute(  # repro: noqa[DET-003] -- boundary stamp\n"
            "    time.time(),\n"
            ")\n"
        )
        report = run_check([str(target)], root=str(tmp_path))
        assert report.findings == []
        assert [f.rule for f in report.suppressed_pragma] == ["DET-003"]

    def test_pragma_does_not_leak_past_its_statement(self, tmp_path):
        target = tmp_path / "src" / "repro" / "core" / "mod.py"
        target.parent.mkdir(parents=True)
        target.write_text(
            "import time\n"
            "value = compute(  # repro: noqa[DET-003] -- boundary stamp\n"
            "    time.time(),\n"
            ")\n"
            "other = time.time()\n"
        )
        report = run_check([str(target)], root=str(tmp_path))
        assert [f.rule for f in report.findings] == ["DET-003"]
        assert report.findings[0].line == 5


# ---------------------------------------------------------------------- #
# reporter edge cases
# ---------------------------------------------------------------------- #
class TestReporterEdgeCases:
    def test_empty_report_document_validates(self):
        report = CheckReport(
            findings=[],
            suppressed_pragma=[],
            suppressed_baseline=[],
            files_scanned=0,
        )
        document = render_json(report)
        assert validate_check_document(document) == []
        assert document["summary"]["findings"] == 0

    def test_identical_findings_sort_stably(self, tmp_path):
        # two byte-identical violating lines produce same-rule findings
        # whose relative order is fully determined by (path, line, col)
        target = tmp_path / "mod.py"
        target.write_text(
            "import random\n"
            "a = random.Random()\n"
            "b = random.Random()\n"
        )
        first = run_check([str(target)], root=str(tmp_path))
        second = run_check([str(target)], root=str(tmp_path))
        assert first.findings == second.findings
        assert [f.line for f in first.findings] == [2, 3]

    def test_validator_rejects_unknown_finding_severity(self, report=None):
        document = {
            "meta": {
                "schema_version": SCHEMA_VERSION,
                "tool": "repro check",
                "strict": False,
                "paths": [],
                "files_scanned": 1,
            },
            "rules": [{"id": "DET-001", "severity": "error", "summary": "s"}],
            "findings": [
                {
                    "rule": "DET-001",
                    "severity": "fatal",
                    "path": "mod.py",
                    "line": 1,
                    "col": 0,
                    "message": "m",
                }
            ],
            "suppressed": {"pragma": [], "baseline": []},
            "summary": {
                "findings": 1,
                "errors": 1,
                "warnings": 0,
                "suppressed_pragma": 0,
                "suppressed_baseline": 0,
                "files_scanned": 1,
                "exit_code": 1,
            },
        }
        problems = validate_check_document(document)
        assert any("severity" in p and "'fatal'" in p for p in problems)

    def test_validator_rejects_unknown_rule_severity(self):
        document = {
            "meta": {
                "schema_version": SCHEMA_VERSION,
                "tool": "repro check",
                "strict": False,
                "paths": [],
                "files_scanned": 0,
            },
            "rules": [{"id": "X-001", "severity": "fatal", "summary": "s"}],
            "findings": [],
            "suppressed": {"pragma": [], "baseline": []},
            "summary": {
                "findings": 0,
                "errors": 0,
                "warnings": 0,
                "suppressed_pragma": 0,
                "suppressed_baseline": 0,
                "files_scanned": 0,
                "exit_code": 0,
            },
        }
        problems = validate_check_document(document)
        assert any("rules[0].severity" in p for p in problems)


# ---------------------------------------------------------------------- #
# stale baseline entries and --prune-baseline
# ---------------------------------------------------------------------- #
class TestStaleBaseline:
    def _baseline(self, tmp_path, line_text="x = random.Random()"):
        baseline = tmp_path / "baseline.json"
        Baseline(
            [
                BaselineEntry(
                    path="mod.py",
                    rule="DET-001",
                    line_text=line_text,
                    justification="fixture",
                )
            ]
        ).save(str(baseline))
        return baseline

    def test_stale_entry_is_reported(self, tmp_path, monkeypatch):
        # the violating line was fixed; the exemption now matches nothing
        (tmp_path / "mod.py").write_text("VALUE = 1\n")
        baseline = self._baseline(tmp_path)
        monkeypatch.chdir(tmp_path)
        report = run_check(["mod.py"], baseline=Baseline.load(str(baseline)))
        assert [entry.rule for entry in report.stale_baseline] == ["DET-001"]
        assert "stale baseline entry" in render_text(report)

    def test_matching_entry_is_not_stale(self, tmp_path, monkeypatch):
        (tmp_path / "mod.py").write_text(
            "import random\nx = random.Random()\n"
        )
        baseline = self._baseline(tmp_path)
        monkeypatch.chdir(tmp_path)
        report = run_check(["mod.py"], baseline=Baseline.load(str(baseline)))
        assert report.stale_baseline == []
        assert len(report.suppressed_baseline) == 1

    def test_prune_flag_rewrites_the_baseline_file(
        self, tmp_path, capsys, monkeypatch
    ):
        from repro.cli import main

        (tmp_path / "mod.py").write_text("VALUE = 1\n")
        baseline = self._baseline(tmp_path)
        monkeypatch.chdir(tmp_path)
        code = main(
            [
                "check",
                "mod.py",
                "--baseline",
                str(baseline),
                "--prune-baseline",
            ]
        )
        assert code == 0
        assert "pruned" in capsys.readouterr().out
        assert len(Baseline.load(str(baseline))) == 0

    def test_prune_keeps_live_entries(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main

        (tmp_path / "mod.py").write_text(
            "import random\nx = random.Random()\n"
        )
        baseline = self._baseline(tmp_path)
        monkeypatch.chdir(tmp_path)
        code = main(
            [
                "check",
                "mod.py",
                "--baseline",
                str(baseline),
                "--prune-baseline",
            ]
        )
        assert code == 0
        assert len(Baseline.load(str(baseline))) == 1
