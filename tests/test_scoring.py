"""Score combination (Eq. 1) tests."""

import pytest

from repro.config import LinkerConfig
from repro.core.scoring import combine_scores


class TestCombineScores:
    def test_weighted_sum(self):
        config = LinkerConfig(alpha=0.6, beta=0.3, gamma=0.1)
        ranked = combine_scores(
            [7],
            interest={7: 0.5},
            recency={7: 0.2},
            popularity={7: 1.0},
            config=config,
        )
        assert ranked[0].score == pytest.approx(0.6 * 0.5 + 0.3 * 0.2 + 0.1 * 1.0)

    def test_descending_order(self):
        config = LinkerConfig()
        ranked = combine_scores(
            [1, 2, 3],
            interest={1: 0.1, 2: 0.9, 3: 0.5},
            recency={},
            popularity={},
            config=config,
        )
        assert [c.entity_id for c in ranked] == [2, 3, 1]

    def test_tie_breaks_by_entity_id(self):
        config = LinkerConfig()
        ranked = combine_scores(
            [9, 4],
            interest={9: 0.5, 4: 0.5},
            recency={9: 0.5, 4: 0.5},
            popularity={9: 0.5, 4: 0.5},
            config=config,
        )
        assert [c.entity_id for c in ranked] == [4, 9]

    def test_missing_features_default_zero(self):
        ranked = combine_scores([1], {}, {}, {}, LinkerConfig())
        assert ranked[0].score == 0.0
        assert ranked[0].interest == 0.0

    def test_breakdown_preserved(self):
        ranked = combine_scores(
            [1],
            interest={1: 0.4},
            recency={1: 0.3},
            popularity={1: 0.2},
            config=LinkerConfig(),
        )
        candidate = ranked[0]
        assert (candidate.interest, candidate.recency, candidate.popularity) == (
            0.4,
            0.3,
            0.2,
        )

    def test_weight_semantics_alpha_interest_beta_recency(self):
        """Table-3 semantics: α weighs interest, β weighs recency."""
        interest_only = LinkerConfig(alpha=1.0, beta=0.0, gamma=0.0)
        recency_only = LinkerConfig(alpha=0.0, beta=1.0, gamma=0.0)
        features = dict(interest={1: 0.7}, recency={1: 0.2}, popularity={1: 0.9})
        assert combine_scores([1], config=interest_only, **features)[0].score == 0.7
        assert combine_scores([1], config=recency_only, **features)[0].score == 0.2

    def test_empty_candidates(self):
        assert combine_scores([], {}, {}, {}, LinkerConfig()) == []
