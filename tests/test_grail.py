"""GRAIL-style interval index tests (SCC, condensation, pruned search)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.digraph import DiGraph
from repro.graph.grail import (
    GrailIndex,
    GrailPrunedReachability,
    condensation,
    tarjan_scc,
)
from repro.graph.reachability import weighted_reachability
from repro.graph.traversal import bfs_reachable

from conftest import random_graph


def edge_list_strategy(max_nodes=10):
    return st.integers(min_value=2, max_value=max_nodes).flatmap(
        lambda n: st.tuples(
            st.just(n),
            st.lists(
                st.tuples(
                    st.integers(min_value=0, max_value=n - 1),
                    st.integers(min_value=0, max_value=n - 1),
                ).filter(lambda e: e[0] != e[1]),
                max_size=3 * n,
                unique=True,
            ),
        )
    )


class TestTarjanScc:
    def test_dag_is_all_singletons(self, chain_graph):
        components = tarjan_scc(chain_graph)
        assert len(set(components)) == 5

    def test_cycle_collapses(self):
        graph = DiGraph.from_edges(4, [(0, 1), (1, 2), (2, 0), (2, 3)])
        components = tarjan_scc(graph)
        assert components[0] == components[1] == components[2]
        assert components[3] != components[0]

    def test_two_cycles_bridge(self):
        graph = DiGraph.from_edges(
            6, [(0, 1), (1, 0), (1, 2), (2, 3), (3, 4), (4, 2), (4, 5)]
        )
        components = tarjan_scc(graph)
        assert components[0] == components[1]
        assert components[2] == components[3] == components[4]
        assert len({components[0], components[2], components[5]}) == 3

    def test_isolated_nodes(self):
        components = tarjan_scc(DiGraph(3))
        assert sorted(components) == [0, 1, 2]

    @given(edge_list_strategy())
    @settings(max_examples=60, deadline=None)
    def test_property_mutual_reachability(self, spec):
        """Same component iff mutually reachable."""
        num_nodes, edges = spec
        graph = DiGraph.from_edges(num_nodes, edges)
        components = tarjan_scc(graph)
        reach = [bfs_reachable(graph, node) for node in graph.nodes()]
        for u in graph.nodes():
            for v in graph.nodes():
                if u == v:
                    continue
                mutual = v in reach[u] and u in reach[v]
                assert (components[u] == components[v]) == mutual, (u, v)


class TestCondensation:
    def test_is_acyclic(self):
        graph = random_graph(20, 60, seed=2)
        components = tarjan_scc(graph)
        dag = condensation(graph, components)
        # Kahn's algorithm consumes every node iff acyclic
        in_degree = [dag.in_degree(c) for c in dag.nodes()]
        queue = [c for c in dag.nodes() if in_degree[c] == 0]
        seen = 0
        while queue:
            node = queue.pop()
            seen += 1
            for child in dag.out_neighbors(node):
                in_degree[child] -= 1
                if in_degree[child] == 0:
                    queue.append(child)
        assert seen == dag.num_nodes

    def test_no_self_edges(self):
        graph = DiGraph.from_edges(3, [(0, 1), (1, 0), (1, 2)])
        dag = condensation(graph, tarjan_scc(graph))
        assert all(u != v for u, v in dag.edges())


class TestGrailIndex:
    def test_matches_bfs_on_random_graphs(self):
        for seed in (1, 2, 3):
            graph = random_graph(30, 80, seed=seed)
            index = GrailIndex(graph, rng=random.Random(seed))
            for u in range(0, 30, 3):
                truth = bfs_reachable(graph, u)
                for v in range(30):
                    if u == v:
                        continue
                    assert index.reachable(u, v) == (v in truth), (u, v)

    @given(edge_list_strategy())
    @settings(max_examples=60, deadline=None)
    def test_property_matches_bfs(self, spec):
        num_nodes, edges = spec
        graph = DiGraph.from_edges(num_nodes, edges)
        index = GrailIndex(graph, num_traversals=2, rng=random.Random(7))
        for u in graph.nodes():
            truth = bfs_reachable(graph, u)
            for v in graph.nodes():
                if u != v:
                    assert index.reachable(u, v) == (v in truth)

    def test_same_component_is_reachable(self):
        graph = DiGraph.from_edges(2, [(0, 1), (1, 0)])
        index = GrailIndex(graph)
        assert index.reachable(0, 1)
        assert index.reachable(1, 0)

    def test_certificate_rate_on_disconnected_graph(self):
        # two disjoint chains: half of random cross pairs are unreachable
        graph = DiGraph.from_edges(6, [(0, 1), (1, 2), (3, 4), (4, 5)])
        index = GrailIndex(graph)
        pairs = [(u, v) for u in range(6) for v in range(6) if u != v]
        assert index.certificate_rate(pairs) > 0.5

    def test_invalid_traversal_count(self):
        with pytest.raises(ValueError):
            GrailIndex(DiGraph(2), num_traversals=0)


class TestGrailPrunedReachability:
    def test_matches_exact_weighted_reachability(self):
        graph = random_graph(25, 70, seed=5)
        provider = GrailPrunedReachability(graph)
        for u in range(0, 25, 2):
            for v in range(25):
                if u == v:
                    continue
                assert provider.reachability(u, v) == pytest.approx(
                    weighted_reachability(graph, u, v)
                )

    def test_unreachable_shortcuts_to_zero(self, diamond_graph):
        provider = GrailPrunedReachability(diamond_graph)
        assert provider.reachability(4, 0) == 0.0
