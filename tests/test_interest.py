"""User interest (Eq. 3/8) and reachability provider tests."""

import pytest

from repro.core.interest import OnlineReachability, normalized_interest, user_interest
from repro.graph.transitive_closure import build_transitive_closure_incremental
from repro.graph.two_hop import build_two_hop_cover

from conftest import random_graph


class TestUserInterest:
    def test_average_over_influential_users(self, diamond_graph):
        closure = build_transitive_closure_incremental(diamond_graph)
        # R(0,1) = 1, R(0,4) = 1/3 -> average 2/3
        assert user_interest(closure, 0, [1, 4]) == pytest.approx(2 / 3)

    def test_empty_influential_set(self, diamond_graph):
        closure = build_transitive_closure_incremental(diamond_graph)
        assert user_interest(closure, 0, []) == 0.0

    def test_unreachable_users_contribute_zero(self, diamond_graph):
        closure = build_transitive_closure_incremental(diamond_graph)
        assert user_interest(closure, 3, [0, 4]) == 0.0


class TestNormalizedInterest:
    def test_shares_sum_to_one(self, diamond_graph):
        closure = build_transitive_closure_incremental(diamond_graph)
        shares = normalized_interest(closure, 0, {10: [1], 20: [4]})
        assert sum(shares.values()) == pytest.approx(1.0)
        assert shares[10] > shares[20]

    def test_all_silent(self, diamond_graph):
        closure = build_transitive_closure_incremental(diamond_graph)
        shares = normalized_interest(closure, 3, {10: [4], 20: [0]})
        assert shares == {10: 0.0, 20: 0.0}

    def test_ranking_preserved(self, diamond_graph):
        closure = build_transitive_closure_incremental(diamond_graph)
        raw = {e: user_interest(closure, 0, inf) for e, inf in
               {1: [1], 2: [4], 3: [3]}.items()}
        shares = normalized_interest(closure, 0, {1: [1], 2: [4], 3: [3]})
        assert sorted(raw, key=raw.get) == sorted(shares, key=shares.get)


class TestOnlineReachability:
    def test_matches_transitive_closure(self):
        graph = random_graph(30, 100, seed=2)
        closure = build_transitive_closure_incremental(graph)
        online = OnlineReachability(graph)
        for u in range(0, 30, 3):
            for v in range(30):
                assert online.reachability(u, v) == pytest.approx(
                    closure.reachability(u, v)
                )

    def test_matches_two_hop_exact_mode(self):
        graph = random_graph(20, 60, seed=5)
        cover = build_two_hop_cover(graph)
        online = OnlineReachability(graph)
        for u in range(20):
            for v in range(20):
                if u == v:
                    continue
                assert cover.reachability(u, v, exact_followees=True) == pytest.approx(
                    online.reachability(u, v)
                )

    def test_cache_eviction(self, diamond_graph):
        online = OnlineReachability(diamond_graph, cache_size=2)
        for source in range(5):
            online.reachability(source, 0)
        assert len(online._cache) <= 2

    def test_invalidate(self, diamond_graph):
        online = OnlineReachability(diamond_graph)
        online.reachability(0, 4)
        online.invalidate()
        assert not online._cache

    def test_bad_cache_size(self, diamond_graph):
        with pytest.raises(ValueError):
            OnlineReachability(diamond_graph, cache_size=0)
