"""Exact weighted reachability (Eq. 4) tests."""

import pytest

from repro.graph.digraph import DiGraph
from repro.graph.reachability import weighted_reachability, weighted_reachability_from


class TestWeightedReachability:
    def test_direct_followee_is_one(self, diamond_graph):
        # Algorithm 1 line 3: direct follow edge => R = 1.
        assert weighted_reachability(diamond_graph, 0, 1) == 1.0

    def test_diamond_two_hop(self, diamond_graph):
        # d = 2, |F_uv| = 2 (both a and b), |F_u| = 3 => R = 1/2 * 2/3.
        assert weighted_reachability(diamond_graph, 0, 4) == pytest.approx(1 / 3)

    def test_unreachable_is_zero(self, diamond_graph):
        assert weighted_reachability(diamond_graph, 3, 4) == 0.0

    def test_self_reachability_zero(self, diamond_graph):
        assert weighted_reachability(diamond_graph, 0, 0) == 0.0

    def test_hop_horizon(self, chain_graph):
        assert weighted_reachability(chain_graph, 0, 4, max_hops=3) == 0.0
        assert weighted_reachability(chain_graph, 0, 4, max_hops=4) > 0.0

    def test_chain_three_hops(self, chain_graph):
        # single path, one followee out of one => R = 1/3 * 1/1
        assert weighted_reachability(chain_graph, 0, 3) == pytest.approx(1 / 3)

    def test_more_connecting_followees_raise_reachability(self):
        # u follows a, b, c; only a reaches v vs. a and b reach v.
        sparse = DiGraph.from_edges(5, [(0, 1), (0, 2), (0, 3), (1, 4)])
        dense = DiGraph.from_edges(5, [(0, 1), (0, 2), (0, 3), (1, 4), (2, 4)])
        assert weighted_reachability(dense, 0, 4) > weighted_reachability(
            sparse, 0, 4
        )

    def test_shorter_distance_raises_reachability(self):
        # identical followee fractions, different path lengths
        two_hop = DiGraph.from_edges(3, [(0, 1), (1, 2)])
        three_hop = DiGraph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        assert weighted_reachability(two_hop, 0, 2) > weighted_reachability(
            three_hop, 0, 3
        )

    def test_no_followees_zero(self):
        graph = DiGraph(2)
        assert weighted_reachability(graph, 0, 1) == 0.0


class TestSingleSourceVariant:
    def test_matches_pairwise(self, diamond_graph):
        rows = weighted_reachability_from(diamond_graph, 0)
        for target in diamond_graph.nodes():
            if target == 0:
                continue
            assert rows.get(target, 0.0) == pytest.approx(
                weighted_reachability(diamond_graph, 0, target)
            )

    def test_respects_horizon(self, chain_graph):
        rows = weighted_reachability_from(chain_graph, 0, max_hops=2)
        assert set(rows) == {1, 2}

    def test_empty_for_sink_node(self, diamond_graph):
        assert weighted_reachability_from(diamond_graph, 4) == {}
