"""Golden-trace regression suite (tests/golden/*.trace.jsonl).

Each committed fixture pins the complete decision record of one
scenario: span structure, tick timestamps, score attributes, degradation
events.  Any drift — a reordered stage, a changed score, a lost event —
fails here with the exact field named.  Regenerate deliberately with
``repro trace --write-golden`` and review the diff like any other
behavior change.
"""

import os

import pytest

from repro.obs.export import (
    diff_trace_documents,
    load_trace_jsonl,
    validate_trace_document,
)
from repro.obs.scenarios import SCENARIOS, golden_path, run_scenario

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")


def load_golden(name: str):
    path = golden_path(GOLDEN_DIR, name)
    assert os.path.exists(path), (
        f"golden fixture {path} missing — run `repro trace --write-golden`"
    )
    with open(path, "r", encoding="utf-8") as handle:
        return load_trace_jsonl(handle.read())


@pytest.mark.parametrize("name", SCENARIOS)
class TestGoldenTraces:
    def test_golden_fixture_is_schema_valid(self, name):
        assert validate_trace_document(load_golden(name)) == []

    def test_live_trace_matches_golden_field_by_field(self, name):
        live = run_scenario(name)[0]
        diffs = diff_trace_documents(load_golden(name), live)
        assert diffs == [], "\n".join(diffs)


class TestGoldenContent:
    """Pin the load-bearing semantics, independent of the full fixtures."""

    def test_normal_links_basketball_jordan(self):
        document = load_golden("normal")
        root = document["spans"][0]
        assert root["name"] == "link.request"
        assert root["attributes"]["entity"] == 0  # MJ the basketball player
        assert root["attributes"]["abstained"] is False
        assert root["attributes"]["degradation"] is None

    def test_abstention_trace_carries_the_signal(self):
        root = load_golden("abstention")["spans"][0]
        assert root["attributes"]["abstained"] is True
        assert root["attributes"]["degradation"] is None
        assert root["attributes"]["score"] <= 0.4  # β + γ default bound

    def test_degraded_trace_has_breaker_and_degradation_events(self):
        document = load_golden("degraded")
        roots = [s for s in document["spans"] if s["parent_id"] is None]
        assert [r["attributes"]["degradation"] for r in roots] == [
            "index_unavailable",
            "circuit_open",
        ]
        event_names = {
            event["name"] for span in document["spans"] for event in span["events"]
        }
        assert "breaker.open" in event_names
        assert "link.degraded" in event_names

    def test_stage_children_present_in_normal_trace(self):
        document = load_golden("normal")
        names = {span["name"] for span in document["spans"]}
        assert {
            "link.request",
            "link.candidates",
            "link.interest",
            "link.recency",
            "link.popularity",
            "link.combine",
        } <= names
