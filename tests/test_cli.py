"""CLI tests (driving main(argv) directly)."""

import pytest

from repro.cli import build_parser, main
from repro.io import save_world

from conftest import small_profiles


@pytest.fixture(scope="module")
def world_file(tmp_path_factory):
    """A persisted tiny world shared by the CLI tests."""
    from repro.stream.generator import SyntheticWorld

    kb_profile, stream_profile = small_profiles(seed=31)
    world = SyntheticWorld.generate(kb_profile, stream_profile)
    path = tmp_path_factory.mktemp("cli") / "world.json.gz"
    save_world(world, path)
    return str(path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["teleport"])


class TestGenerate:
    def test_generates_and_reports(self, tmp_path, capsys):
        out = tmp_path / "w.json.gz"
        code = main(
            [
                "generate", "--out", str(out), "--seed", "3", "--users", "60",
                "--topics", "3", "--entities-per-topic", "4",
                "--horizon-days", "20",
            ]
        )
        assert code == 0
        assert out.exists()
        assert "60 users" in capsys.readouterr().out


class TestDatasets:
    def test_table2_printed(self, world_file, capsys):
        assert main(["datasets", "--world", world_file]) == 0
        out = capsys.readouterr().out
        assert "Dtest" in out
        assert "D10" in out


class TestEvaluate:
    def test_single_method(self, world_file, capsys):
        code = main(
            [
                "evaluate", "--world", world_file, "--method", "ours",
                "--complement", "truth",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ours" in out
        assert "mention" in out

    def test_all_methods(self, world_file, capsys):
        code = main(
            ["evaluate", "--world", world_file, "--complement", "truth"]
        )
        assert code == 0
        out = capsys.readouterr().out
        for name in ("ours", "onthefly", "collective"):
            assert name in out


class TestLink:
    def test_links_known_surface(self, world_file, capsys):
        from repro.io import load_world

        world = load_world(world_file)
        surface = next(iter(world.synthetic_kb.ambiguous_surfaces))
        code = main(
            [
                "link", "--world", world_file, "--surface", surface,
                "--user", "20", "--day", "19",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "score" in out

    def test_unknown_surface_fails(self, world_file, caplog):
        code = main(
            [
                "link", "--world", world_file, "--surface", "zzzzzzzzz",
                "--user", "20", "--day", "19",
            ]
        )
        assert code == 1
        assert "no candidates" in caplog.text


class TestSearch:
    def test_search_prints_results(self, world_file, capsys):
        from repro.io import load_world

        world = load_world(world_file)
        surface = next(iter(world.synthetic_kb.ambiguous_surfaces))
        code = main(
            ["search", "--world", world_file, "--query", surface, "--user", "20"]
        )
        assert code == 0
        assert "results for" in capsys.readouterr().out


class TestValidate:
    def test_validate_prints_properties(self, world_file, capsys):
        code = main(["validate", "--world", world_file])
        assert code == 0
        out = capsys.readouterr().out
        assert "homophily_lift" in out
        assert "activity_gini" in out
