"""CLI tests (driving main(argv) directly)."""

import pytest

from repro.cli import build_parser, main
from repro.io import save_world

from conftest import small_profiles


@pytest.fixture(scope="module")
def world_file(tmp_path_factory):
    """A persisted tiny world shared by the CLI tests."""
    from repro.stream.generator import SyntheticWorld

    kb_profile, stream_profile = small_profiles(seed=31)
    world = SyntheticWorld.generate(kb_profile, stream_profile)
    path = tmp_path_factory.mktemp("cli") / "world.json.gz"
    save_world(world, path)
    return str(path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["teleport"])


class TestGenerate:
    def test_generates_and_reports(self, tmp_path, capsys):
        out = tmp_path / "w.json.gz"
        code = main(
            [
                "generate", "--out", str(out), "--seed", "3", "--users", "60",
                "--topics", "3", "--entities-per-topic", "4",
                "--horizon-days", "20",
            ]
        )
        assert code == 0
        assert out.exists()
        assert "60 users" in capsys.readouterr().out


class TestDatasets:
    def test_table2_printed(self, world_file, capsys):
        assert main(["datasets", "--world", world_file]) == 0
        out = capsys.readouterr().out
        assert "Dtest" in out
        assert "D10" in out


class TestEvaluate:
    def test_single_method(self, world_file, capsys):
        code = main(
            [
                "evaluate", "--world", world_file, "--method", "ours",
                "--complement", "truth",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ours" in out
        assert "mention" in out

    def test_all_methods(self, world_file, capsys):
        code = main(
            ["evaluate", "--world", world_file, "--complement", "truth"]
        )
        assert code == 0
        out = capsys.readouterr().out
        for name in ("ours", "onthefly", "collective"):
            assert name in out


class TestLink:
    def test_links_known_surface(self, world_file, capsys):
        from repro.io import load_world

        world = load_world(world_file)
        surface = next(iter(world.synthetic_kb.ambiguous_surfaces))
        code = main(
            [
                "link", "--world", world_file, "--surface", surface,
                "--user", "20", "--day", "19",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "score" in out

    def test_unknown_surface_fails(self, world_file, caplog):
        code = main(
            [
                "link", "--world", world_file, "--surface", "zzzzzzzzz",
                "--user", "20", "--day", "19",
            ]
        )
        assert code == 1
        assert "no candidates" in caplog.text


class TestSearch:
    def test_search_prints_results(self, world_file, capsys):
        from repro.io import load_world

        world = load_world(world_file)
        surface = next(iter(world.synthetic_kb.ambiguous_surfaces))
        code = main(
            ["search", "--world", world_file, "--query", surface, "--user", "20"]
        )
        assert code == 0
        assert "results for" in capsys.readouterr().out


class TestValidate:
    def test_validate_prints_properties(self, world_file, capsys):
        code = main(["validate", "--world", world_file])
        assert code == 0
        out = capsys.readouterr().out
        assert "homophily_lift" in out
        assert "activity_gini" in out


class TestEvaluateParallel:
    def test_workers_preserve_accuracy(self, world_file, capsys):
        """evaluate --workers N reports the same accuracy as sequential."""

        def accuracy_cells(argv):
            assert main(argv) == 0
            for line in capsys.readouterr().out.splitlines():
                cells = line.split()
                if cells and cells[0] == "ours":
                    return cells[1:3]  # mention, tweet (ms/tweet may differ)
            raise AssertionError("no 'ours' row in evaluate output")

        base = [
            "evaluate", "--world", world_file, "--method", "ours",
            "--complement", "truth",
        ]
        assert accuracy_cells(base + ["--workers", "2"]) == accuracy_cells(base)


class TestStreamParallel:
    def test_parallel_stream_replays(self, world_file, capsys):
        code = main(
            [
                "stream", "--world", world_file, "--limit", "40",
                "--workers", "2", "--checkpoint-every", "20",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "resilient stream replay" in out
        assert "confirmed_links" in out


class TestBench:
    def test_smoke_bench_writes_valid_document(self, tmp_path, capsys):
        import json

        from repro.bench import validate_bench_document

        out = tmp_path / "BENCH_linking.json"
        code = main(
            [
                "bench", "--smoke", "--seed", "5", "--workers", "1",
                "--out", str(out),
            ]
        )
        assert code == 0
        with open(out, encoding="utf-8") as handle:
            assert validate_bench_document(json.load(handle)) == []
        stdout = capsys.readouterr().out
        assert "one-pass reachability" in stdout
        assert "benchmark written" in stdout

    def test_rejects_workers_without_baseline(self, tmp_path):
        out = tmp_path / "BENCH_linking.json"
        code = main(
            ["bench", "--smoke", "--workers", "2", "--out", str(out)]
        )
        assert code == 1  # ValueError -> clean diagnostic, not a traceback
        assert not out.exists()
