"""``repro bench``: schema validation and a smoke run of the full pipeline."""

import copy
import json

import pytest

from repro.bench import (
    SCHEMA_VERSION,
    compare_bench_documents,
    run_bench,
    validate_bench_document,
)


@pytest.fixture(scope="module")
def smoke_document(tmp_path_factory):
    out = tmp_path_factory.mktemp("bench") / "BENCH_linking.json"
    document = run_bench(seed=5, smoke=True, workers_list=(1,), out=str(out))
    return document, out


class TestSmokeRun:
    def test_document_validates(self, smoke_document):
        document, _ = smoke_document
        assert validate_bench_document(document) == []

    def test_written_file_round_trips(self, smoke_document):
        _, out = smoke_document
        with open(out, encoding="utf-8") as handle:
            assert validate_bench_document(json.load(handle)) == []

    def test_one_pass_outputs_identical(self, smoke_document):
        document, _ = smoke_document
        assert document["reachability"]["outputs_identical"] is True

    def test_batch_rows_match_workers(self, smoke_document):
        document, _ = smoke_document
        rows = document["batch"]["results"]
        assert [row["workers"] for row in rows] == [1]
        assert rows[0]["speedup_vs_1"] == 1.0
        assert rows[0]["throughput_rps"] > 0

    def test_meta_records_inputs(self, smoke_document):
        document, _ = smoke_document
        assert document["meta"]["schema_version"] == SCHEMA_VERSION
        assert document["meta"]["smoke"] is True
        assert document["meta"]["seed"] == 5

    def test_perf_section_populated(self, smoke_document):
        """The instrumented hot paths actually reported into the snapshot."""
        document, _ = smoke_document
        counters = document["perf"]["counters"]
        assert counters.get("graph.one_pass_bfs", 0) > 0

    def test_requires_baseline_worker(self):
        with pytest.raises(ValueError):
            run_bench(smoke=True, workers_list=(2, 4), out=None)

    def test_snapshot_section_populated(self, smoke_document):
        """The epoch-delta protocol actually ran and stayed bit-identical."""
        document, _ = smoke_document
        snapshot = document["snapshot"]
        assert snapshot["outputs_identical"] is True
        assert snapshot["full_blob_bytes"] > 0
        assert snapshot["deltas"] > 0
        assert snapshot["resyncs"] == 0
        assert snapshot["reduction_x"] > 1.0
        assert snapshot["delta_bytes_per_refresh"] < snapshot["full_blob_bytes"]

    def test_batch_rows_flag_undersubscription(self, smoke_document):
        """workers=1 can never exceed the schedulable CPU set."""
        document, _ = smoke_document
        assert document["batch"]["results"][0]["undersubscribed"] is False

    def test_cached_section_outputs_identical(self, smoke_document):
        """The warm-cache run replays the same mentions through cached and
        uncached linkers; any ranked/degradation divergence is recorded."""
        document, _ = smoke_document
        cached = document["single_mention_cached"]
        assert cached["outputs_identical"] is True
        assert cached["mentions"] > 0
        assert cached["speedup_vs_uncached"] > 0
        assert set(cached["hit_rates"]) == {
            "candidates", "popularity", "interest", "recency",
        }
        for rate in cached["hit_rates"].values():
            assert 0.0 <= rate <= 1.0


class TestValidator:
    @pytest.fixture
    def valid(self, smoke_document):
        document, _ = smoke_document
        return copy.deepcopy(document)

    def test_non_object(self):
        assert validate_bench_document([]) == ["document is not a JSON object"]

    def test_missing_section(self, valid):
        del valid["reachability"]
        assert "missing or non-object section 'reachability'" in validate_bench_document(
            valid
        )

    def test_missing_key(self, valid):
        del valid["single_mention"]["p99_ms"]
        assert "single_mention.p99_ms missing" in validate_bench_document(valid)

    def test_wrong_schema_version(self, valid):
        valid["meta"]["schema_version"] = SCHEMA_VERSION + 1
        problems = validate_bench_document(valid)
        assert any("schema_version" in p for p in problems)

    def test_empty_batch_results(self, valid):
        valid["batch"]["results"] = []
        assert "batch.results must be a non-empty list" in validate_bench_document(
            valid
        )

    def test_malformed_batch_row(self, valid):
        del valid["batch"]["results"][0]["throughput_rps"]
        assert "batch.results[0].throughput_rps missing" in validate_bench_document(
            valid
        )

    def test_missing_snapshot_key(self, valid):
        del valid["snapshot"]["reduction_x"]
        assert "snapshot.reduction_x missing" in validate_bench_document(valid)

    def test_missing_undersubscribed_flag(self, valid):
        del valid["batch"]["results"][0]["undersubscribed"]
        assert "batch.results[0].undersubscribed missing" in validate_bench_document(
            valid
        )

    def test_missing_cached_section(self, valid):
        del valid["single_mention_cached"]
        assert (
            "missing or non-object section 'single_mention_cached'"
            in validate_bench_document(valid)
        )


class TestCompare:
    """The CI perf-regression gate: errors fail the job, warnings do not."""

    @pytest.fixture
    def docs(self, smoke_document):
        document, _ = smoke_document
        return copy.deepcopy(document), copy.deepcopy(document)

    def test_identical_documents_pass(self, docs):
        current, baseline = docs
        errors, _ = compare_bench_documents(current, baseline)
        assert errors == []

    def test_p50_regression_is_an_error(self, docs):
        current, baseline = docs
        current["single_mention"]["p50_ms"] = (
            baseline["single_mention"]["p50_ms"] * 2.0 + 1.0
        )
        errors, _ = compare_bench_documents(current, baseline, tolerance=0.25)
        assert any("single_mention.p50_ms regressed" in e for e in errors)

    def test_regression_within_tolerance_passes(self, docs):
        current, baseline = docs
        current["single_mention"]["p50_ms"] = (
            baseline["single_mention"]["p50_ms"] * 1.10
        )
        errors, _ = compare_bench_documents(current, baseline, tolerance=0.25)
        assert errors == []

    def test_cached_p50_is_gated_too(self, docs):
        current, baseline = docs
        current["single_mention_cached"]["p50_ms"] = (
            baseline["single_mention_cached"]["p50_ms"] * 3.0 + 1.0
        )
        errors, _ = compare_bench_documents(current, baseline)
        assert any("single_mention_cached.p50_ms" in e for e in errors)

    def test_workload_mismatch_is_an_error(self, docs):
        current, baseline = docs
        baseline["meta"]["seed"] = current["meta"]["seed"] + 1
        errors, _ = compare_bench_documents(current, baseline)
        assert any("workload mismatch" in e for e in errors)

    def test_output_divergence_is_an_error(self, docs):
        current, baseline = docs
        current["single_mention_cached"]["outputs_identical"] = False
        errors, _ = compare_bench_documents(current, baseline)
        assert any("outputs_identical" in e for e in errors)

    def test_build_time_regression_only_warns(self, docs):
        current, baseline = docs
        current["build"]["transitive_closure_parallel_s"] = (
            baseline["build"]["transitive_closure_parallel_s"] * 10.0 + 1.0
        )
        errors, warnings = compare_bench_documents(current, baseline)
        assert errors == []
        assert any("transitive_closure_parallel_s" in w for w in warnings)

    def test_low_speedup_only_warns(self, docs):
        current, baseline = docs
        current["single_mention_cached"]["speedup_vs_uncached"] = 1.1
        errors, warnings = compare_bench_documents(current, baseline)
        assert errors == []
        assert any("speedup" in w for w in warnings)

    def _with_worker_row(self, document, speedup, undersubscribed):
        document["batch"]["results"].append(
            {
                "workers": 4,
                "seconds": 1.0,
                "throughput_rps": 100.0,
                "speedup_vs_1": speedup,
                "undersubscribed": undersubscribed,
            }
        )

    def test_subscribed_speedup_drop_is_an_error(self, docs):
        current, baseline = docs
        self._with_worker_row(baseline, speedup=3.0, undersubscribed=False)
        self._with_worker_row(current, speedup=1.0, undersubscribed=False)
        errors, _ = compare_bench_documents(current, baseline, tolerance=0.25)
        assert any("batch speedup at workers=4 dropped" in e for e in errors)

    def test_undersubscribed_speedup_drop_only_warns(self, docs):
        """A 1-core runner cannot fail the gate for lacking cores."""
        current, baseline = docs
        self._with_worker_row(baseline, speedup=3.0, undersubscribed=False)
        self._with_worker_row(current, speedup=1.0, undersubscribed=True)
        errors, warnings = compare_bench_documents(current, baseline, tolerance=0.25)
        assert errors == []
        assert any("undersubscribed: warning only" in w for w in warnings)

    def test_snapshot_divergence_is_an_error(self, docs):
        current, baseline = docs
        current["snapshot"]["outputs_identical"] = False
        errors, _ = compare_bench_documents(current, baseline)
        assert any("snapshot.outputs_identical" in e for e in errors)

    def test_low_snapshot_reduction_warns(self, docs):
        current, baseline = docs
        current["snapshot"]["reduction_x"] = 2.0
        errors, warnings = compare_bench_documents(current, baseline)
        assert errors == []
        assert any("snapshot delta reduction" in w for w in warnings)

    def test_invalid_baseline_is_an_error(self, docs):
        current, _ = docs
        errors, _ = compare_bench_documents(current, {"meta": {}})
        assert any("baseline document is invalid" in e for e in errors)

    def test_rejects_non_positive_tolerance(self, docs):
        current, baseline = docs
        with pytest.raises(ValueError):
            compare_bench_documents(current, baseline, tolerance=0.0)
