"""``repro bench``: schema validation and a smoke run of the full pipeline."""

import copy
import json

import pytest

from repro.bench import SCHEMA_VERSION, run_bench, validate_bench_document


@pytest.fixture(scope="module")
def smoke_document(tmp_path_factory):
    out = tmp_path_factory.mktemp("bench") / "BENCH_linking.json"
    document = run_bench(seed=5, smoke=True, workers_list=(1,), out=str(out))
    return document, out


class TestSmokeRun:
    def test_document_validates(self, smoke_document):
        document, _ = smoke_document
        assert validate_bench_document(document) == []

    def test_written_file_round_trips(self, smoke_document):
        _, out = smoke_document
        with open(out, encoding="utf-8") as handle:
            assert validate_bench_document(json.load(handle)) == []

    def test_one_pass_outputs_identical(self, smoke_document):
        document, _ = smoke_document
        assert document["reachability"]["outputs_identical"] is True

    def test_batch_rows_match_workers(self, smoke_document):
        document, _ = smoke_document
        rows = document["batch"]["results"]
        assert [row["workers"] for row in rows] == [1]
        assert rows[0]["speedup_vs_1"] == 1.0
        assert rows[0]["throughput_rps"] > 0

    def test_meta_records_inputs(self, smoke_document):
        document, _ = smoke_document
        assert document["meta"]["schema_version"] == SCHEMA_VERSION
        assert document["meta"]["smoke"] is True
        assert document["meta"]["seed"] == 5

    def test_perf_section_populated(self, smoke_document):
        """The instrumented hot paths actually reported into the snapshot."""
        document, _ = smoke_document
        counters = document["perf"]["counters"]
        assert counters.get("graph.one_pass_bfs", 0) > 0

    def test_requires_baseline_worker(self):
        with pytest.raises(ValueError):
            run_bench(smoke=True, workers_list=(2, 4), out=None)


class TestValidator:
    @pytest.fixture
    def valid(self, smoke_document):
        document, _ = smoke_document
        return copy.deepcopy(document)

    def test_non_object(self):
        assert validate_bench_document([]) == ["document is not a JSON object"]

    def test_missing_section(self, valid):
        del valid["reachability"]
        assert "missing or non-object section 'reachability'" in validate_bench_document(
            valid
        )

    def test_missing_key(self, valid):
        del valid["single_mention"]["p99_ms"]
        assert "single_mention.p99_ms missing" in validate_bench_document(valid)

    def test_wrong_schema_version(self, valid):
        valid["meta"]["schema_version"] = SCHEMA_VERSION + 1
        problems = validate_bench_document(valid)
        assert any("schema_version" in p for p in problems)

    def test_empty_batch_results(self, valid):
        valid["batch"]["results"] = []
        assert "batch.results must be a non-empty list" in validate_bench_document(
            valid
        )

    def test_malformed_batch_row(self, valid):
        del valid["batch"]["results"][0]["throughput_rps"]
        assert "batch.results[0].throughput_rps missing" in validate_bench_document(
            valid
        )
