"""Personalized search subsystem tests (store, parser, engine)."""

import pytest

from repro.config import DAY, LinkerConfig
from repro.core.linker import SocialTemporalLinker
from repro.graph.digraph import DiGraph
from repro.search.engine import PersonalizedSearchEngine
from repro.search.query import QueryParser
from repro.search.store import TweetStore
from repro.stream.tweet import MentionSpan, Tweet


def make_tweet(tweet_id, user, timestamp, text):
    return Tweet(
        tweet_id=tweet_id, user=user, timestamp=timestamp, text=text,
        mentions=(MentionSpan("x"),),
    )


class TestTweetStore:
    def test_add_and_get(self):
        store = TweetStore([make_tweet(1, 0, 0.0, "jordan dunks again")])
        assert store.get(1).text == "jordan dunks again"
        assert store.get(99) is None
        assert 1 in store and 99 not in store

    def test_duplicate_add_ignored(self):
        tweet = make_tweet(1, 0, 0.0, "hello")
        store = TweetStore([tweet, tweet])
        assert len(store) == 1

    def test_keyword_overlap(self):
        store = TweetStore([make_tweet(1, 0, 0.0, "jordan dunks again")])
        assert store.keyword_overlap(1, {"dunks", "misses"}) == 0.5
        assert store.keyword_overlap(1, set()) == 0.0
        assert store.keyword_overlap(42, {"dunks"}) == 0.0

    def test_find_by_keywords_ranked(self):
        store = TweetStore(
            [
                make_tweet(1, 0, 5.0, "dunk highlight reel"),
                make_tweet(2, 0, 9.0, "dunk of the year"),
                make_tweet(3, 0, 1.0, "cooking pasta"),
            ]
        )
        results = store.find_by_keywords({"dunk", "highlight"})
        assert [t.tweet_id for t in results] == [1, 2]


class TestQueryParser:
    def test_mention_and_keywords_split(self, tiny_kb):
        parser = QueryParser(tiny_kb)
        parsed = parser.parse("jordan best dunk video")
        assert parsed.mentions == ["jordan"]
        assert parsed.keywords == {"best", "dunk", "video"}
        assert parsed.has_mention

    def test_multiword_mention(self, tiny_kb):
        parsed = QueryParser(tiny_kb).parse("chicago bulls tickets")
        assert parsed.mentions == ["chicago bulls"]
        assert parsed.keywords == {"tickets"}

    def test_no_mention(self, tiny_kb):
        parsed = QueryParser(tiny_kb).parse("pasta recipe")
        assert not parsed.has_mention
        assert parsed.keywords == {"pasta", "recipe"}

    def test_register_surface(self, tiny_kb):
        parser = QueryParser(tiny_kb)
        parser.register_surface("goat")
        assert parser.parse("the goat returns").mentions == ["goat"]


@pytest.fixture
def engine(tiny_ckb):
    graph = DiGraph(13)
    graph.add_edge(0, 10)  # Alice follows @NBAOfficial
    graph.add_edge(5, 11)  # Bob follows the ML expert
    linker = SocialTemporalLinker(
        tiny_ckb,
        graph,
        config=LinkerConfig(burst_threshold=2, influential_users=2, top_k=1),
    )
    store = TweetStore()
    # tiny_ckb records carry tweet_id=-1; add store-resolvable links with
    # real ids and texts for the engine to surface
    tweets = []
    next_id = 100
    for entity_id, text in [(0, "jordan dunk highlight"), (1, "jordan icml talk")]:
        for record in tiny_ckb.tweets_of(entity_id):
            tweets.append(
                Tweet(
                    tweet_id=next_id,
                    user=record.user,
                    timestamp=record.timestamp,
                    text=text,
                    mentions=(MentionSpan("jordan", true_entity=entity_id),),
                )
            )
            next_id += 1
    for tweet in tweets:
        store.add(tweet)
    # re-link with proper tweet ids so the engine can resolve them
    for tweet in tweets:
        tiny_ckb.link_tweet(
            tweet.mentions[0].true_entity, tweet.user, tweet.timestamp, tweet.tweet_id
        )
    return PersonalizedSearchEngine(linker, store)


class TestEngine:
    def test_personalized_disambiguation(self, engine):
        now = 100 * DAY
        alice = engine.search("jordan dunk", user=0, now=now)
        assert not alice.used_fallback
        assert alice.linked_entities[0].entity_id == 0
        assert all(hit.entity_id == 0 for hit in alice.hits)
        assert alice.hits  # tweets linked to the basketball entity

        bob = engine.search("jordan talk", user=5, now=now)
        assert bob.linked_entities[0].entity_id == 1

    def test_keyword_relevance_boosts_matching_tweets(self, engine):
        response = engine.search("jordan dunk", user=0, now=100 * DAY)
        top = response.hits[0]
        assert "dunk" in top.tweet.text

    def test_future_tweets_never_returned(self, engine):
        response = engine.search("jordan dunk", user=0, now=0.5 * DAY)
        assert all(hit.tweet.timestamp <= 0.5 * DAY for hit in response.hits)

    def test_keyword_fallback(self, engine):
        response = engine.search("icml talk", user=0, now=100 * DAY)
        # "icml" is a KB surface, so it links; use a mention-free query
        response = engine.search("highlight reel", user=0, now=100 * DAY)
        assert response.used_fallback
        assert response.hits
        assert all(hit.entity_id is None for hit in response.hits)

    def test_limit_respected(self, engine):
        response = engine.search("jordan", user=0, now=100 * DAY, limit=3)
        assert len(response.hits) <= 3

    def test_no_interest_no_hits_via_threshold(self, engine):
        # user 6 is isolated; every candidate scores <= beta + gamma, so the
        # engine abstains and falls back to keywords (of which there are none)
        response = engine.search("jordan", user=6, now=100 * DAY)
        assert response.used_fallback
        assert response.linked_entities == []

    def test_engine_validation(self, engine):
        with pytest.raises(ValueError):
            PersonalizedSearchEngine(
                engine._linker, engine._store, freshness_half_life=0.0
            )
        with pytest.raises(ValueError):
            PersonalizedSearchEngine(
                engine._linker, engine._store, keyword_weight=2.0
            )
