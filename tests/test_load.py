"""Deterministic load harness: replayability, chaos invariants, schema.

The acceptance contract under test: with breaker-tripping faults,
slow-KB latency and malformed records injected at roughly twice the
admission capacity, every request resolves to a link result, a graceful
no-interest degradation, or a typed shed/ratelimit/unavailable body —
zero unhandled errors — and two seeded replays under the injected clock
produce byte-identical reports.
"""

import json

import pytest

from repro.serve.admission import AdmissionController
from repro.serve.handlers import ServeApp
from repro.serve.load import (
    MALFORMED_MODES,
    LoadProfile,
    VirtualClock,
    generate_requests,
    queries_from_dataset,
    run_inprocess,
)
from repro.serve.report import (
    LOAD_SCHEMA_VERSION,
    OUTCOMES,
    build_load_document,
    validate_load_document,
    zero_outcomes,
)
from repro.serve.tenants import ChaosConfig, TenantSpec, build_tenant_registry

CHAOS = ChaosConfig(error_rate=0.05, slow_rate=0.1, slow_ms=40.0, seed=3)
CHAOS_META = {
    "enabled": True, "error_rate": 0.05, "slow_rate": 0.1,
    "slow_ms": 40.0, "seed": 3,
}


def build_app(world, clock, chaos=None):
    """2x-overload wiring: arrivals average twice the per-tenant rate."""
    registry, context = build_tenant_registry(
        world,
        [TenantSpec(name="alpha", rate=25.0, burst=50.0, deadline_ms=50.0,
                    failure_threshold=5, recovery_timeout=5.0),
         TenantSpec(name="beta", rate=25.0, burst=50.0, deadline_ms=50.0,
                    failure_threshold=5, recovery_timeout=5.0)],
        clock=clock,
        chaos=chaos,
    )
    app = ServeApp(
        registry,
        admission=AdmissionController(capacity=4, queue_limit=8),
        clock=clock,
        defer_release=True,
    )
    return app, context


def run_once(world, requests=600, chaos=None, seed=17):
    clock = VirtualClock()
    app, context = build_app(world, clock, chaos=chaos)
    profile = LoadProfile(base_rate=100.0)
    planned = generate_requests(
        seed, requests, profile, ["alpha", "beta"],
        queries_from_dataset(context.test_dataset),
    )
    meta = CHAOS_META if chaos else {"enabled": False}
    return run_inprocess(app, clock, planned, seed, profile, meta)


# ---------------------------------------------------------------------- #
# traffic generation
# ---------------------------------------------------------------------- #
class TestTrafficGeneration:
    QUERIES = [("jordan", 1, 100.0), ("bulls", 2, 200.0)]

    def test_same_seed_same_trace(self):
        profile = LoadProfile()
        a = generate_requests(7, 200, profile, ["t"], self.QUERIES)
        b = generate_requests(7, 200, profile, ["t"], self.QUERIES)
        assert a == b

    def test_different_seed_different_trace(self):
        profile = LoadProfile()
        a = generate_requests(7, 200, profile, ["t"], self.QUERIES)
        b = generate_requests(8, 200, profile, ["t"], self.QUERIES)
        assert a != b

    def test_arrivals_strictly_increase(self):
        planned = generate_requests(7, 300, LoadProfile(), ["t"], self.QUERIES)
        instants = [request.at for request in planned]
        assert instants == sorted(instants)
        assert len(set(instants)) == len(instants)

    def test_malformed_slice_cycles_all_modes(self):
        profile = LoadProfile(malformed_rate=0.5)
        planned = generate_requests(7, 400, profile, ["t"], self.QUERIES)
        modes = {r.mode for r in planned if r.mode is not None}
        assert modes == set(MALFORMED_MODES)
        malformed = sum(1 for r in planned if r.mode is not None)
        assert 100 < malformed < 300  # ~ rate 0.5 of 400

    def test_spike_profile_raises_rate_inside_spike(self):
        profile = LoadProfile(name="spike", base_rate=100.0,
                              spike_factor=4.0, spike_every_s=20.0,
                              spike_length_s=2.0)
        assert profile.rate_at(1.0) == pytest.approx(400.0)
        assert profile.rate_at(10.0) == pytest.approx(100.0)

    def test_diurnal_profile_modulates_sinusoidally(self):
        profile = LoadProfile(name="diurnal", base_rate=100.0,
                              diurnal_amplitude=0.5, diurnal_period_s=60.0)
        assert profile.rate_at(15.0) == pytest.approx(150.0)  # sin peak
        assert profile.rate_at(45.0) == pytest.approx(50.0)   # sin trough

    def test_queries_required(self):
        with pytest.raises(ValueError):
            generate_requests(7, 10, LoadProfile(), ["t"], [])


class TestVirtualClock:
    def test_advance_to_never_goes_backwards(self):
        clock = VirtualClock()
        clock.advance(5.0)
        clock.advance_to(3.0)
        assert clock() == 5.0
        clock.advance_to(7.0)
        assert clock() == 7.0

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1.0)


# ---------------------------------------------------------------------- #
# the acceptance gates
# ---------------------------------------------------------------------- #
class TestChaosLoad:
    @pytest.fixture(scope="class")
    def chaos_report(self, small_world):
        return run_once(small_world, chaos=CHAOS)

    def test_schema_valid(self, chaos_report):
        assert validate_load_document(chaos_report) == []

    def test_zero_unhandled_under_chaos(self, chaos_report):
        assert chaos_report["unhandled"] == 0
        assert chaos_report["outcomes"]["internal"] == 0
        assert chaos_report["outcomes"]["connection_error"] == 0

    def test_every_request_accounted_for(self, chaos_report):
        assert sum(chaos_report["outcomes"].values()) == 600

    def test_overload_sheds_and_rate_limits(self, chaos_report):
        # 2x the sustained per-tenant rate: the buckets must push back
        assert chaos_report["outcomes"]["rate_limited"] > 0
        assert chaos_report["shed_rate"] > 0.2

    def test_chaos_produces_degraded_answers_not_failures(self, chaos_report):
        assert chaos_report["outcomes"]["degraded"] > 0
        assert chaos_report["outcomes"]["ok"] > 0
        assert chaos_report["outcomes"]["unavailable"] == 0

    def test_malformed_records_stay_typed(self, chaos_report):
        assert chaos_report["outcomes"]["bad_request"] > 0
        assert chaos_report["outcomes"]["unknown_tenant"] > 0
        assert chaos_report["outcomes"]["not_found"] > 0

    def test_latency_percentiles_ordered(self, chaos_report):
        latency = chaos_report["latency_ms"]
        assert 0 < latency["p50"] <= latency["p90"] <= latency["p99"] <= latency["max"]

    def test_per_tenant_accounting_sums_to_tenant_traffic(self, chaos_report):
        by_tenant = chaos_report["by_tenant"]
        assert set(by_tenant) == {"alpha", "beta"}
        tenant_total = sum(sum(c.values()) for c in by_tenant.values())
        # requests with no tenant (bad route, unknown tenant, bad json)
        # are counted globally only
        assert tenant_total <= 600
        assert tenant_total > 400


class TestReplayDeterminism:
    def test_chaos_reports_byte_identical(self, small_world):
        first = run_once(small_world, chaos=CHAOS)
        second = run_once(small_world, chaos=CHAOS)
        assert json.dumps(first, sort_keys=True) == json.dumps(
            second, sort_keys=True
        )

    def test_fault_free_reports_byte_identical(self, small_world):
        first = run_once(small_world, requests=300, chaos=None)
        second = run_once(small_world, requests=300, chaos=None)
        assert json.dumps(first, sort_keys=True) == json.dumps(
            second, sort_keys=True
        )

    def test_different_seeds_differ(self, small_world):
        first = run_once(small_world, requests=300, seed=1)
        second = run_once(small_world, requests=300, seed=2)
        assert first["outcomes"] != second["outcomes"] or (
            first["latency_ms"] != second["latency_ms"]
        )

    def test_admission_slots_fully_released_after_run(self, small_world):
        clock = VirtualClock()
        app, context = build_app(small_world, clock, chaos=CHAOS)
        planned = generate_requests(
            17, 300, LoadProfile(base_rate=100.0), ["alpha", "beta"],
            queries_from_dataset(context.test_dataset),
        )
        run_inprocess(app, clock, planned, 17, LoadProfile(), CHAOS_META)
        assert app.admission.pending == 0


# ---------------------------------------------------------------------- #
# report schema
# ---------------------------------------------------------------------- #
class TestReportSchema:
    @staticmethod
    def minimal_document():
        outcomes = zero_outcomes()
        outcomes["ok"] = 2
        outcomes["shed"] = 1
        return build_load_document(
            mode="inprocess", seed=1, profile="bursty",
            chaos={"enabled": False}, outcomes=outcomes,
            by_tenant={"alpha": {"ok": 2, "shed": 1}},
            latencies_s=[0.010, 0.020], duration_s=1.5,
        )

    def test_valid_document_passes(self):
        assert validate_load_document(self.minimal_document()) == []

    def test_schema_version_pinned(self):
        doc = self.minimal_document()
        assert doc["meta"]["schema_version"] == LOAD_SCHEMA_VERSION
        doc["meta"]["schema_version"] = 99
        assert any("schema_version" in p for p in validate_load_document(doc))

    def test_every_outcome_key_required(self):
        for dropped in OUTCOMES:
            doc = self.minimal_document()
            del doc["outcomes"][dropped]
            assert any(dropped in p for p in validate_load_document(doc))

    def test_sections_required(self):
        for section in ("meta", "outcomes", "latency_ms", "by_tenant"):
            doc = self.minimal_document()
            del doc[section]
            assert any(section in p for p in validate_load_document(doc))

    def test_rates_must_be_fractions(self):
        doc = self.minimal_document()
        doc["shed_rate"] = 1.5
        assert any("shed_rate" in p for p in validate_load_document(doc))

    def test_non_object_rejected(self):
        assert validate_load_document([1, 2]) != []

    def test_shed_rate_counts_both_pushback_forms(self):
        doc = self.minimal_document()
        # 1 shed of 3 requests; rate_limited included in the definition
        assert doc["shed_rate"] == pytest.approx(1 / 3, abs=1e-6)

    def test_rejections_never_contribute_latency(self):
        doc = self.minimal_document()
        assert doc["latency_ms"]["max"] == pytest.approx(20.0)

    def test_malformed_mode_list_is_stable(self):
        # the trace composition is part of the replay contract
        assert MALFORMED_MODES == (
            "bad_json", "missing_surface", "empty_surface", "bad_user",
            "wrong_type", "unknown_tenant", "bad_route",
        )
