"""Segment-based fuzzy index tests, including a brute-force hypothesis check."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kb.surface_index import SegmentIndex, _segments
from repro.text.edit_distance import within_edit_distance

words = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=10)


class TestSegments:
    def test_partition_covers_string(self):
        for pieces in (1, 2, 3):
            parts = _segments("abcdefg", pieces)
            assert "".join(seg for _, seg in parts) == "abcdefg"
            assert len(parts) == pieces

    def test_positions_consistent(self):
        text = "abcdefgh"
        for start, seg in _segments(text, 3):
            assert text[start : start + len(seg)] == seg


class TestLookup:
    def test_exact_match(self):
        index = SegmentIndex(["jordan", "bulls"], max_edits=1)
        assert "jordan" in index.lookup("jordan")

    def test_one_substitution(self):
        index = SegmentIndex(["jordan"], max_edits=1)
        assert index.lookup("jordon") == ["jordan"]

    def test_insertion_and_deletion(self):
        index = SegmentIndex(["jordan"], max_edits=1)
        assert index.lookup("jordaan") == ["jordan"]
        assert index.lookup("jordn") == ["jordan"]

    def test_beyond_threshold_misses(self):
        index = SegmentIndex(["jordan"], max_edits=1)
        assert index.lookup("jrdn") == []

    def test_zero_edits_is_exact_only(self):
        index = SegmentIndex(["jordan"], max_edits=0)
        assert index.lookup("jordan") == ["jordan"]
        assert index.lookup("jordon") == []

    def test_multi_word_surfaces(self):
        index = SegmentIndex(["michael jordan"], max_edits=1)
        assert index.lookup("michael jordon") == ["michael jordan"]

    def test_short_strings_bucket(self):
        index = SegmentIndex(["a", "ab"], max_edits=1)
        assert set(index.lookup("b")) == {"a", "ab"}

    def test_empty_query(self):
        index = SegmentIndex(["abc"], max_edits=1)
        assert index.lookup("") == []

    def test_add_after_construction(self):
        index = SegmentIndex([], max_edits=1)
        index.add("bulls")
        assert index.lookup("bulle") == ["bulls"]

    def test_duplicate_add_idempotent(self):
        index = SegmentIndex(["x y"], max_edits=1)
        index.add("x y")
        assert len(index) == 1

    def test_negative_max_edits_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            SegmentIndex([], max_edits=-1)

    @given(
        st.lists(words, min_size=1, max_size=15, unique=True),
        words,
        st.integers(min_value=0, max_value=2),
    )
    @settings(max_examples=200, deadline=None)
    def test_matches_brute_force(self, surfaces, query, k):
        """Index lookup must return exactly the within-k surfaces."""
        index = SegmentIndex(surfaces, max_edits=k)
        expected = {s for s in surfaces if within_edit_distance(query, s, k)}
        assert set(index.lookup(query)) == expected
