"""Tracer unit tests: stack discipline, determinism, overhead switches."""

import pytest

from repro.obs.trace import TRACE, TickClock, Tracer


def make_tracer(**kwargs) -> Tracer:
    tracer = Tracer(**kwargs)
    tracer.enable()
    return tracer


class TestTickClock:
    def test_monotone_integers(self):
        clock = TickClock()
        assert [clock() for _ in range(4)] == [0.0, 1.0, 2.0, 3.0]

    def test_custom_start(self):
        assert TickClock(start=7)() == 7.0


class TestSpanTree:
    def test_root_then_child_parenting(self):
        tracer = make_tracer()
        with tracer.span("root") as root:
            with tracer.span("child") as child:
                pass
        assert root.parent_id is None
        assert child.parent_id == root.span_id
        assert child.trace_id == root.trace_id

    def test_sibling_roots_get_new_trace_ids(self):
        tracer = make_tracer()
        with tracer.span("first") as first:
            pass
        with tracer.span("second") as second:
            pass
        assert first.trace_id != second.trace_id
        assert first.parent_id is None and second.parent_id is None

    def test_child_interval_nested_in_parent(self):
        tracer = make_tracer()
        with tracer.span("root") as root:
            with tracer.span("child") as child:
                pass
        assert root.start <= child.start <= child.end <= root.end

    def test_finished_in_completion_order(self):
        tracer = make_tracer()
        with tracer.span("root"):
            with tracer.span("child"):
                pass
        names = [span.name for span in tracer.finished_spans()]
        assert names == ["child", "root"]

    def test_attributes_and_events(self):
        tracer = make_tracer()
        with tracer.span("root", surface="jordan") as span:
            span.set_attribute("candidates", 3)
            span.add_event("degraded", reason="circuit_open")
        assert span.attributes == {"surface": "jordan", "candidates": 3}
        assert span.events[0].name == "degraded"
        assert span.events[0].attributes == {"reason": "circuit_open"}
        assert span.start <= span.events[0].time <= span.end

    def test_exception_records_error_and_closes(self):
        tracer = make_tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("root"):
                raise RuntimeError("boom")
        (root,) = tracer.finished_spans()
        assert root.attributes["error"] == "RuntimeError"
        assert tracer.open_spans == 0

    def test_event_outside_any_span_becomes_own_trace(self):
        tracer = make_tracer()
        tracer.event("breaker.open", reason="probe failed")
        (span,) = tracer.finished_spans()
        assert span.parent_id is None
        assert span.events[0].attributes == {"reason": "probe failed"}

    def test_tracer_event_attaches_to_innermost(self):
        tracer = make_tracer()
        with tracer.span("root"):
            with tracer.span("child") as child:
                tracer.event("tick")
        assert child.events[0].name == "tick"


class TestSwitches:
    def test_disabled_by_default_returns_noop(self):
        tracer = Tracer()
        span = tracer.span("root")
        assert span.recording is False
        with span:
            span.set_attribute("ignored", 1)
            span.add_event("ignored")
        assert tracer.finished_spans() == []

    def test_disabled_event_is_free(self):
        tracer = Tracer()
        tracer.event("ignored")
        assert tracer.finished_spans() == []

    def test_global_trace_disabled_by_default(self):
        assert TRACE.enabled is False

    def test_reset_restarts_ids_and_owned_clock(self):
        tracer = make_tracer()
        with tracer.span("first"):
            pass
        tracer.reset()
        with tracer.span("second") as span:
            pass
        assert span.span_id == 0
        assert span.trace_id == 0
        assert span.start == 0.0

    def test_reset_keeps_switch(self):
        tracer = make_tracer()
        tracer.reset()
        assert tracer.enabled

    def test_injected_clock_not_reset(self):
        clock = TickClock()
        tracer = make_tracer(clock=clock)
        with tracer.span("first"):
            pass
        tracer.reset()
        with tracer.span("second") as span:
            pass
        assert span.start > 0.0  # the caller's clock kept ticking

    def test_drain_clears(self):
        tracer = make_tracer()
        with tracer.span("root"):
            pass
        assert len(tracer.drain()) == 1
        assert tracer.finished_spans() == []


class TestBounds:
    def test_max_spans_drops_and_counts(self):
        tracer = make_tracer(max_spans=2)
        for _ in range(4):
            with tracer.span("s"):
                pass
        assert len(tracer.finished_spans()) == 2
        assert tracer.dropped == 2

    def test_invalid_max_spans_rejected(self):
        with pytest.raises(ValueError):
            Tracer(max_spans=0)
