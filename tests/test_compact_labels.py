"""Property battery: the compact 2-hop cover vs. the dict-backed oracle.

The compact cover (:mod:`repro.graph.compact_labels`) is the production
reachability index past the closure's |V|² wall, so its contract is
**bit-identity**: on any graph, every ``distance`` / ``query`` /
``exact_followee_set`` / ``reachability`` answer must equal the
dict-of-dicts :class:`~repro.graph.two_hop.TwoHopCover` — same values,
same types — and ``reachability(exact_followees=True)`` must equal the
BFS ground truth :func:`~repro.graph.reachability.weighted_reachability`.
The randomized suite here sweeps density, hop horizon, and seeds; the
deterministic classes pin edge cases and the ``label_bytes`` accounting.
"""

import math
import pickle
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.compact_labels import (
    CompactTwoHopCover,
    build_compact_two_hop_cover,
)
from repro.graph.digraph import DiGraph
from repro.graph.reachability import (
    weighted_reachability,
    weighted_reachability_from,
)
from repro.graph.two_hop import INF, build_two_hop_cover

from conftest import random_graph


def assert_bit_identical(compact, oracle, graph):
    """Every query answer matches the dict cover in value AND type."""
    for s in graph.nodes():
        for t in graph.nodes():
            want = oracle.distance(s, t)
            got = compact.distance(s, t)
            assert got == want, (s, t)
            assert type(got) is type(want), (s, t)
            want_d, want_f = oracle.query(s, t)
            got_d, got_f = compact.query(s, t)
            assert got_d == want_d and got_f == want_f, (s, t)
            assert compact.exact_followee_set(s, t) == oracle.exact_followee_set(
                s, t
            ), (s, t)
            for exact in (False, True):
                want_r = oracle.reachability(s, t, exact_followees=exact)
                got_r = compact.reachability(s, t, exact_followees=exact)
                assert got_r == want_r, (s, t, exact)


class TestRandomizedIdentity:
    """The heart of the battery: seeds x densities x hop horizons."""

    @settings(max_examples=40, deadline=None)
    @given(
        nodes=st.integers(min_value=2, max_value=24),
        density=st.floats(min_value=0.05, max_value=0.6),
        max_hops=st.sampled_from([1, 2, 3, 4, 6]),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_matches_dict_cover(self, nodes, density, max_hops, seed):
        edges = int(density * nodes * (nodes - 1))
        graph = random_graph(nodes, edges, seed)
        oracle = build_two_hop_cover(graph, max_hops=max_hops)
        compact = build_compact_two_hop_cover(graph, max_hops=max_hops)
        assert compact.max_hops == max_hops
        assert compact.num_label_entries() == oracle.num_label_entries()
        assert_bit_identical(compact, oracle, graph)

    @settings(max_examples=25, deadline=None)
    @given(
        nodes=st.integers(min_value=2, max_value=20),
        density=st.floats(min_value=0.05, max_value=0.5),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_exact_mode_matches_bfs_ground_truth(self, nodes, density, seed):
        """``exact_followees=True`` equals Eq. 4 computed from scratch."""
        edges = int(density * nodes * (nodes - 1))
        graph = random_graph(nodes, edges, seed)
        compact = build_compact_two_hop_cover(graph, max_hops=4)
        for s in graph.nodes():
            truth = weighted_reachability_from(graph, s, 4)
            for t in graph.nodes():
                got = compact.reachability(s, t, exact_followees=True)
                want = truth.get(t, 0.0) if s != t else 0.0
                assert got == pytest.approx(want, abs=1e-12), (s, t)
                single = weighted_reachability(graph, s, t, 4)
                assert got == pytest.approx(single, abs=1e-12), (s, t)

    @settings(max_examples=20, deadline=None)
    @given(
        nodes=st.integers(min_value=2, max_value=20),
        density=st.floats(min_value=0.05, max_value=0.5),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_from_cover_freeze_is_identical(self, nodes, density, seed):
        """Freezing a built dict cover == building compactly from scratch."""
        edges = int(density * nodes * (nodes - 1))
        graph = random_graph(nodes, edges, seed)
        oracle = build_two_hop_cover(graph, max_hops=4)
        frozen = CompactTwoHopCover.from_cover(oracle, graph)
        direct = build_compact_two_hop_cover(graph, max_hops=4)
        assert frozen.num_label_entries() == direct.num_label_entries()
        assert_bit_identical(frozen, oracle, graph)
        assert_bit_identical(direct, oracle, graph)


class TestEdgeCases:
    def test_empty_graph(self):
        graph = DiGraph(0)
        compact = build_compact_two_hop_cover(graph)
        assert compact.num_label_entries() == 0
        assert compact.label_bytes() > 0  # offsets arrays still exist

    def test_single_node(self):
        graph = DiGraph(1)
        compact = build_compact_two_hop_cover(graph)
        assert compact.distance(0, 0) == 0.0
        assert type(compact.distance(0, 0)) is float
        assert compact.reachability(0, 0) == 0.0

    def test_self_loops_rejected_by_graph(self):
        """The container forbids self-loops, so covers never see them."""
        graph = DiGraph(2)
        with pytest.raises(ValueError):
            graph.add_edge(1, 1)

    def test_unreachable_pair_is_inf_distance_zero_reachability(self):
        graph = DiGraph.from_edges(3, [(0, 1)])  # node 2 isolated
        compact = build_compact_two_hop_cover(graph)
        oracle = build_two_hop_cover(graph)
        assert compact.distance(0, 2) == oracle.distance(0, 2) == INF
        assert compact.distance(0, 2) is INF or math.isinf(compact.distance(0, 2))
        assert compact.reachability(0, 2) == 0.0
        assert compact.query(0, 2) == (INF, set())

    def test_beyond_horizon_is_unreachable(self, chain_graph):
        compact = build_compact_two_hop_cover(chain_graph, max_hops=2)
        assert compact.distance(0, 2) == 2
        assert compact.distance(0, 3) == INF
        assert compact.reachability(0, 3) == 0.0

    def test_max_hops_over_255_rejected(self, diamond_graph):
        """Distances live in single bytes; the ctor enforces the ceiling."""
        with pytest.raises(ValueError):
            build_compact_two_hop_cover(diamond_graph, max_hops=256)

    def test_distance_one_followee_is_target(self, diamond_graph):
        # d==1 entries synthesize {target} at query time (no pool span)
        compact = build_compact_two_hop_cover(diamond_graph)
        assert compact.query(0, 1) == (1, {1})
        assert compact.exact_followee_set(0, 1) == {1}


class TestMemoryBudget:
    def _world(self, seed=3):
        return random_graph(40, 300, seed)

    def test_budget_respected_and_distances_unchanged(self):
        graph = self._world()
        free = build_compact_two_hop_cover(graph, max_hops=4)
        budget = free.stats()["backbone_bytes"] + (
            free.label_bytes() - free.stats()["backbone_bytes"]
        ) // 3
        pruned = build_compact_two_hop_cover(
            graph, max_hops=4, memory_budget_bytes=budget
        )
        assert pruned.label_bytes() <= budget
        assert pruned.pruned_followee_entries > 0
        for s in graph.nodes():
            for t in graph.nodes():
                assert pruned.distance(s, t) == free.distance(s, t)

    def test_pruned_followees_bounded_by_exact(self):
        """stored span ⊆ lazily recovered ⊆ exact F_st (Theorem 1)."""
        graph = self._world()
        free = build_compact_two_hop_cover(graph, max_hops=4)
        backbone = free.stats()["backbone_bytes"]
        pruned = build_compact_two_hop_cover(
            graph, max_hops=4, memory_budget_bytes=backbone
        )
        for s in graph.nodes():
            for t in graph.nodes():
                exact = free.exact_followee_set(s, t)
                _, recovered = pruned.query(s, t)
                _, stored = free.query(s, t)
                assert recovered <= exact or not exact, (s, t)
                # the pruned cover recovers at least what the free cover
                # had stored for the same minimal pivots
                assert stored <= exact or not exact, (s, t)

    def test_exact_reachability_unaffected_by_pruning(self):
        graph = self._world()
        free = build_compact_two_hop_cover(graph, max_hops=4)
        backbone = free.stats()["backbone_bytes"]
        pruned = build_compact_two_hop_cover(
            graph, max_hops=4, memory_budget_bytes=backbone
        )
        for s in graph.nodes():
            for t in graph.nodes():
                assert pruned.reachability(
                    s, t, exact_followees=True
                ) == free.reachability(s, t, exact_followees=True)

    def test_budget_below_backbone_raises(self):
        graph = self._world()
        free = build_compact_two_hop_cover(graph, max_hops=4)
        floor = free.stats()["backbone_bytes"]
        with pytest.raises(ValueError, match="distance backbone"):
            build_compact_two_hop_cover(
                graph, max_hops=4, memory_budget_bytes=floor - 1
            )

    def test_hub_landmarks_keep_their_pools(self):
        """Pruning drops the least-central landmarks' pools first."""
        graph = self._world()
        free = build_compact_two_hop_cover(graph, max_hops=4)
        backbone = free.stats()["backbone_bytes"]
        mid = backbone + (free.label_bytes() - backbone) // 2
        pruned = build_compact_two_hop_cover(
            graph, max_hops=4, memory_budget_bytes=mid
        )
        cutoff = pruned.stats()["followee_rank_cutoff"]
        assert 0 < cutoff <= graph.num_nodes


class TestSerialization:
    def test_pickle_roundtrip_preserves_queries(self):
        graph = random_graph(30, 150, 7)
        compact = build_compact_two_hop_cover(graph, max_hops=4)
        clone = pickle.loads(pickle.dumps(compact))
        for s in graph.nodes():
            for t in graph.nodes():
                assert clone.distance(s, t) == compact.distance(s, t)
                assert clone.query(s, t) == compact.query(s, t)
        assert clone.label_bytes() == compact.label_bytes()


class TestLabelBytes:
    """Index-bytes reporting pinned against hand-computed layouts."""

    def test_compact_bytes_match_hand_computed_fixture(self, diamond_graph):
        """The documented layout formula, fed only by oracle label shape."""
        cover = build_two_hop_cover(diamond_graph, max_hops=4)
        compact = CompactTwoHopCover.from_cover(cover, diamond_graph)
        n = diamond_graph.num_nodes
        total_in = sum(len(cover.in_label(v)) for v in diamond_graph.nodes())
        total_out = sum(len(cover.out_label(v)) for v in diamond_graph.nodes())
        # only distance>1 entries store a pool span; d==1 followees are
        # synthesized as {landmark} at query time
        pool = sum(
            len(entry[1])
            for v in diamond_graph.nodes()
            for entry in cover.out_label(v).values()
            if entry[0] > 1
        )
        expected = (
            4 * n                  # landmark order (every node is one)
            + 4 * n                # node -> rank
            + 8 * (n + 1) * 2      # in/out offset arrays
            + 5 * total_in         # in pivots (4 B) + distances (1 B)
            + 5 * total_out        # out pivots + distances
            + 8 * (total_out + 1)  # followee span offsets
            + 4 * pool             # flat followee pool
        )
        assert compact.label_bytes() == expected
        assert compact.size_bytes() == expected
        assert compact.backbone_bytes() == expected - 4 * pool

    def test_dict_cover_bytes_count_every_container(self, diamond_graph):
        """No more bare ``getsizeof(dict)``: entries, tuples, followee
        sets, and int objects are all accounted for."""
        cover = build_two_hop_cover(diamond_graph, max_hops=4)
        int_size = sys.getsizeof(1 << 16)
        expected = 0
        for node in diamond_graph.nodes():
            lbl_in = cover.in_label(node)
            expected += sys.getsizeof(lbl_in) + 2 * int_size * len(lbl_in)
            lbl_out = cover.out_label(node)
            expected += sys.getsizeof(lbl_out)
            for _, entry in lbl_out.items():
                followees = entry[1]
                expected += 2 * int_size
                expected += sys.getsizeof(entry)
                expected += sys.getsizeof(followees) + int_size * len(followees)
        assert cover.label_bytes() == expected
        assert cover.size_bytes() == expected

    def test_compact_is_smaller_than_dict_cover(self):
        graph = random_graph(60, 500, 5)
        cover = build_two_hop_cover(graph, max_hops=4)
        compact = CompactTwoHopCover.from_cover(cover, graph)
        assert compact.label_bytes() < cover.label_bytes() / 4
