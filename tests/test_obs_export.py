"""Trace documents: JSONL roundtrip, schema validation, field diffs."""

import pytest

from repro.obs.export import (
    diff_trace_documents,
    dump_trace_jsonl,
    load_trace_jsonl,
    render_trace_document,
    validate_trace_document,
)
from repro.obs.scenarios import SCENARIOS, run_scenario
from repro.obs.trace import Tracer


def sample_document():
    tracer = Tracer()
    tracer.enable()
    with tracer.span("link.request", surface="jordan") as root:
        root.add_event("link.degraded", reason="circuit_open")
        with tracer.span("link.candidates"):
            pass
    return render_trace_document(tracer.drain(), scenario="unit")


class TestRoundtrip:
    def test_dump_load_identity(self):
        document = sample_document()
        assert load_trace_jsonl(dump_trace_jsonl(document)) == document

    def test_spans_ordered_by_span_id(self):
        document = sample_document()
        ids = [span["span_id"] for span in document["spans"]]
        assert ids == sorted(ids)

    def test_meta_fields(self):
        meta = sample_document()["meta"]
        assert meta["scenario"] == "unit"
        assert meta["clock"] == "tick"
        assert meta["span_count"] == 2

    def test_load_rejects_garbage(self):
        with pytest.raises(ValueError):
            load_trace_jsonl('{"type": "span"}\n')  # no meta record
        with pytest.raises(ValueError):
            load_trace_jsonl('{"type": "mystery"}\n')
        with pytest.raises(ValueError):
            load_trace_jsonl("[1, 2]\n")


class TestByteIdentical:
    @pytest.mark.parametrize("name", SCENARIOS)
    def test_scenario_rerun_is_byte_identical(self, name):
        first = dump_trace_jsonl(run_scenario(name)[0])
        second = dump_trace_jsonl(run_scenario(name)[0])
        assert first == second

    @pytest.mark.parametrize("name", SCENARIOS)
    def test_scenario_metrics_rerun_identical(self, name):
        assert run_scenario(name)[1] == run_scenario(name)[1]


class TestValidation:
    def test_valid_document_passes(self):
        assert validate_trace_document(sample_document()) == []

    def test_every_scenario_validates(self):
        for name in SCENARIOS:
            assert validate_trace_document(run_scenario(name)[0]) == []

    def test_non_object_rejected(self):
        assert validate_trace_document("nope") != []

    def test_missing_meta_key(self):
        document = sample_document()
        del document["meta"]["clock"]
        assert any("meta.clock" in p for p in validate_trace_document(document))

    def test_span_count_mismatch(self):
        document = sample_document()
        document["meta"]["span_count"] = 99
        assert any("span_count" in p for p in validate_trace_document(document))

    def test_duplicate_span_id(self):
        document = sample_document()
        document["spans"][1]["span_id"] = document["spans"][0]["span_id"]
        document["spans"][1]["parent_id"] = None
        assert any("duplicates" in p for p in validate_trace_document(document))

    def test_orphan_parent(self):
        document = sample_document()
        document["spans"][1]["parent_id"] = 777
        assert any("orphan" in p for p in validate_trace_document(document))

    def test_two_roots_in_one_trace(self):
        document = sample_document()
        document["spans"][1]["parent_id"] = None
        assert any("root" in p for p in validate_trace_document(document))

    def test_child_interval_must_nest(self):
        document = sample_document()
        document["spans"][1]["end"] = document["spans"][0]["end"] + 50.0
        assert any("nested" in p for p in validate_trace_document(document))

    def test_event_time_outside_span(self):
        document = sample_document()
        document["spans"][0]["events"][0]["time"] = -1.0
        assert any("outside" in p for p in validate_trace_document(document))

    def test_end_before_start(self):
        document = sample_document()
        document["spans"][1]["start"] = document["spans"][1]["end"] + 1.0
        problems = validate_trace_document(document)
        assert any("ends before" in p for p in problems)


class TestDiff:
    def test_identical_documents_have_no_diff(self):
        assert diff_trace_documents(sample_document(), sample_document()) == []

    def test_attribute_drift_named_precisely(self):
        golden, live = sample_document(), sample_document()
        live["spans"][0]["attributes"]["surface"] = "bulls"
        (diff,) = diff_trace_documents(golden, live)
        assert "spans[0].attributes.surface" in diff
        assert "'jordan'" in diff and "'bulls'" in diff

    def test_added_attribute_reported(self):
        golden, live = sample_document(), sample_document()
        live["spans"][1]["attributes"]["extra"] = 1
        (diff,) = diff_trace_documents(golden, live)
        assert "not in golden" in diff

    def test_span_count_drift_reported(self):
        golden, live = sample_document(), sample_document()
        live["spans"].pop()
        diffs = diff_trace_documents(golden, live)
        assert any("span count" in d for d in diffs)

    def test_event_drift_reported(self):
        golden, live = sample_document(), sample_document()
        live["spans"][0]["events"][0]["attributes"]["reason"] = "deadline"
        diffs = diff_trace_documents(golden, live)
        assert any("events[0]" in d and "reason" in d for d in diffs)

    def test_structural_field_drift_reported(self):
        golden, live = sample_document(), sample_document()
        live["spans"][1]["name"] = "renamed"
        diffs = diff_trace_documents(golden, live)
        assert any("spans[1].name" in d for d in diffs)
