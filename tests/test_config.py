"""LinkerConfig validation and the paper's Table-3 defaults."""

import dataclasses

import pytest

from repro.config import DAY, DEFAULT_CONFIG, PAPER_BURST_THRESHOLD, LinkerConfig


class TestTable3Defaults:
    """Default parameters must match Table 3 of the paper."""

    def test_feature_weights(self):
        assert DEFAULT_CONFIG.alpha == 0.6
        assert DEFAULT_CONFIG.beta == 0.3
        assert DEFAULT_CONFIG.gamma == 0.1

    def test_window_is_three_days(self):
        assert DEFAULT_CONFIG.window == 3 * DAY

    def test_relatedness_threshold(self):
        assert DEFAULT_CONFIG.relatedness_threshold == 0.6

    def test_paper_burst_threshold_constant(self):
        # Table 3 says theta_1 = 10; the runtime default is scaled to the
        # synthetic stream density (DESIGN.md §5) but the paper constant
        # stays available.
        assert PAPER_BURST_THRESHOLD == 10
        assert 0 < DEFAULT_CONFIG.burst_threshold <= PAPER_BURST_THRESHOLD

    def test_max_hops_small_world(self):
        assert DEFAULT_CONFIG.max_hops == 4


class TestValidation:
    def test_weights_must_sum_to_one(self):
        with pytest.raises(ValueError, match="must be 1"):
            LinkerConfig(alpha=0.5, beta=0.5, gamma=0.5)

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            LinkerConfig(alpha=1.2, beta=-0.3, gamma=0.1)

    def test_zero_window_rejected(self):
        with pytest.raises(ValueError, match="window"):
            LinkerConfig(window=0.0)

    def test_bad_threshold_rejected(self):
        with pytest.raises(ValueError, match="relatedness_threshold"):
            LinkerConfig(relatedness_threshold=1.5)

    def test_bad_lambda_rejected(self):
        with pytest.raises(ValueError, match="propagation_lambda"):
            LinkerConfig(propagation_lambda=-0.1)

    def test_bad_influence_method_rejected(self):
        with pytest.raises(ValueError, match="influence"):
            LinkerConfig(influence_method="pagerank")

    def test_zero_hops_rejected(self):
        with pytest.raises(ValueError, match="max_hops"):
            LinkerConfig(max_hops=0)

    def test_zero_top_k_rejected(self):
        with pytest.raises(ValueError, match="top_k"):
            LinkerConfig(top_k=0)

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            DEFAULT_CONFIG.alpha = 0.5


class TestHelpers:
    def test_with_weights_returns_new_config(self):
        updated = DEFAULT_CONFIG.with_weights(1.0, 0.0, 0.0)
        assert updated.alpha == 1.0
        assert DEFAULT_CONFIG.alpha == 0.6  # original untouched
        assert updated.window == DEFAULT_CONFIG.window

    def test_no_interest_bound_is_beta_plus_gamma(self):
        config = LinkerConfig(alpha=0.5, beta=0.3, gamma=0.2)
        assert config.no_interest_bound == pytest.approx(0.5)
