"""Dynamic (incrementally maintained) transitive closure tests."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.digraph import DiGraph
from repro.graph.dynamic import DynamicTransitiveClosure, replay_follow_events
from repro.graph.transitive_closure import build_transitive_closure_incremental

from conftest import random_graph


def assert_matches_rebuild(dynamic: DynamicTransitiveClosure):
    """The maintained closure must equal a from-scratch rebuild."""
    rebuilt = build_transitive_closure_incremental(
        dynamic.graph, max_hops=dynamic.max_hops
    )
    for u in dynamic.graph.nodes():
        for v in dynamic.graph.nodes():
            assert dynamic.reachability(u, v) == pytest.approx(
                rebuilt.reachability(u, v)
            ), (u, v)


class TestConstruction:
    def test_initial_state_matches_static(self, diamond_graph):
        dynamic = DynamicTransitiveClosure(diamond_graph)
        assert_matches_rebuild(dynamic)

    def test_snapshot_is_queryable(self, diamond_graph):
        dynamic = DynamicTransitiveClosure(diamond_graph)
        frozen = dynamic.snapshot()
        assert frozen.reachability(0, 4) == pytest.approx(1 / 3)


class TestEdgeInsertion:
    def test_single_insertion(self, diamond_graph):
        dynamic = DynamicTransitiveClosure(diamond_graph)
        # third followee (node 3) now also reaches v=4
        assert dynamic.add_edge(3, 4)
        assert_matches_rebuild(dynamic)
        # R(0,4) improved: all three followees now on shortest paths
        assert dynamic.reachability(0, 4) == pytest.approx(1 / 2)

    def test_duplicate_edge_is_noop(self, diamond_graph):
        dynamic = DynamicTransitiveClosure(diamond_graph)
        before = dynamic.rows_recomputed
        assert not dynamic.add_edge(0, 1)
        assert dynamic.rows_recomputed == before
        assert dynamic.insertions == 0

    def test_insertion_extends_reach(self, chain_graph):
        dynamic = DynamicTransitiveClosure(chain_graph, max_hops=4)
        assert dynamic.reachability(1, 4) > 0.0
        assert dynamic.reachability(0, 4) > 0.0
        dynamic.add_edge(4, 0)  # close the cycle
        assert_matches_rebuild(dynamic)

    def test_new_node_then_edges(self, diamond_graph):
        dynamic = DynamicTransitiveClosure(diamond_graph)
        fresh = dynamic.add_node()
        assert dynamic.reachability(fresh, 0) == 0.0
        dynamic.add_edge(fresh, 0)
        assert dynamic.reachability(fresh, 0) == 1.0
        assert dynamic.reachability(fresh, 4) > 0.0  # via 0's followees
        assert_matches_rebuild(dynamic)

    def test_random_insertion_sequence(self):
        rng = random.Random(3)
        graph = random_graph(18, 40, seed=1)
        dynamic = DynamicTransitiveClosure(graph)
        for _ in range(25):
            u = rng.randrange(18)
            v = rng.randrange(18)
            if u != v:
                dynamic.add_edge(u, v)
        assert_matches_rebuild(dynamic)

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=7),
                st.integers(min_value=0, max_value=7),
            ).filter(lambda e: e[0] != e[1]),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_property_any_insertion_order(self, edges):
        dynamic = DynamicTransitiveClosure(DiGraph(8), max_hops=4)
        for u, v in edges:
            dynamic.add_edge(u, v)
        assert_matches_rebuild(dynamic)


class TestMaintenanceCost:
    def test_affected_rows_are_a_fraction_of_the_graph(self):
        graph = random_graph(120, 360, seed=5)
        dynamic = DynamicTransitiveClosure(graph)
        rng = random.Random(9)
        inserted = 0
        while inserted < 10:
            u, v = rng.randrange(120), rng.randrange(120)
            if u != v and dynamic.add_edge(u, v):
                inserted += 1
        # far fewer rows touched than 10 full rebuilds (10 * 120 rows)
        assert dynamic.rows_recomputed < 10 * 120

    def test_replay_follow_events(self, diamond_graph):
        dynamic = DynamicTransitiveClosure(diamond_graph)
        events = [(3, 4), (3, 4), (4, 0)]
        assert replay_follow_events(dynamic, events) == 2
        assert replay_follow_events(dynamic, [(0, 4), (1, 2)], limit=1) == 1


class TestEdgeDeletion:
    def test_single_deletion(self, diamond_graph):
        dynamic = DynamicTransitiveClosure(diamond_graph)
        assert dynamic.remove_edge(1, 4)
        assert_matches_rebuild(dynamic)
        # only one followee path remains: R(0,4) = 1/2 * 1/3
        assert dynamic.reachability(0, 4) == pytest.approx(1 / 6)

    def test_missing_edge_is_noop(self, diamond_graph):
        dynamic = DynamicTransitiveClosure(diamond_graph)
        before = dynamic.rows_recomputed
        assert not dynamic.remove_edge(3, 0)
        assert dynamic.rows_recomputed == before

    def test_deletion_disconnects(self, chain_graph):
        dynamic = DynamicTransitiveClosure(chain_graph)
        dynamic.remove_edge(2, 3)
        assert dynamic.reachability(0, 4) == 0.0
        assert_matches_rebuild(dynamic)

    def test_mixed_insert_delete_sequence(self):
        rng = random.Random(13)
        graph = random_graph(15, 35, seed=4)
        dynamic = DynamicTransitiveClosure(graph)
        for _ in range(30):
            u, v = rng.randrange(15), rng.randrange(15)
            if u == v:
                continue
            if graph.has_edge(u, v) and rng.random() < 0.5:
                dynamic.remove_edge(u, v)
            elif not graph.has_edge(u, v):
                dynamic.add_edge(u, v)
        assert_matches_rebuild(dynamic)

    @given(
        st.lists(
            st.tuples(
                st.booleans(),
                st.integers(min_value=0, max_value=6),
                st.integers(min_value=0, max_value=6),
            ).filter(lambda e: e[1] != e[2]),
            min_size=1,
            max_size=24,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_property_mixed_mutations(self, operations):
        dynamic = DynamicTransitiveClosure(DiGraph(7), max_hops=4)
        for is_delete, u, v in operations:
            if is_delete:
                dynamic.remove_edge(u, v)
            else:
                dynamic.add_edge(u, v)
        assert_matches_rebuild(dynamic)
