"""Property suite for the PR-5 score caches: the bit-identity contract.

Two linkers share one world — same complemented KB, same follow graph,
same config except ``score_caching`` — and every test drives both
through the *same* operation sequence, asserting the cached linker's
output equals the uncached oracle's exactly (``==`` on the full ranked
tuple, scores included: the contract is bit-identity, not tolerance).

The second half pins invalidation *exactness* through PERF counter
deltas: an epoch bump must invalidate precisely the caches that depend
on the mutated structure, and no others — conservative invalidation is
allowed by the design, but the concrete mutators here have exact
dependencies and the tests hold them to it.
"""

from __future__ import annotations

import dataclasses
import random

import pytest

from repro.config import DAY, LinkerConfig
from repro.core.linker import SocialTemporalLinker
from repro.graph.digraph import DiGraph
from repro.perf import PERF


@pytest.fixture(autouse=True)
def clean_perf():
    PERF.reset()
    yield
    PERF.reset()


def _config(**overrides) -> LinkerConfig:
    base = dict(
        burst_threshold=2,
        influential_users=2,
        relatedness_threshold=0.2,
        fuzzy_edit_distance=0,
    )
    base.update(overrides)
    return LinkerConfig(**base)


def _pair(tiny_ckb, **overrides):
    """(uncached, cached) linkers sharing one ckb and one graph."""
    graph = DiGraph.from_edges(13, [(10, 11), (11, 12), (12, 10), (10, 12)])
    config = _config(**overrides)
    uncached = SocialTemporalLinker(tiny_ckb, graph, config=config)
    cached = SocialTemporalLinker(
        tiny_ckb, graph, config=dataclasses.replace(config, score_caching=True)
    )
    return uncached, cached, graph


_SURFACES = ("jordan", "nba", "chicago bulls", "icml", "air jordan", "zzzz")


def _assert_identical(uncached, cached, surface, user, now):
    cold = uncached.link(surface, user, now)
    warm = cached.link(surface, user, now)
    assert warm.ranked == cold.ranked, (surface, user, now)
    assert warm.degradation == cold.degradation, (surface, user, now)


class TestBitIdentity:
    @pytest.mark.parametrize("seed", [3, 11, 29])
    @pytest.mark.parametrize("propagation", [True, False])
    def test_randomized_interleavings(self, tiny_ckb, seed, propagation):
        """link / mutate / advance / regress / prune, in random order —
        the cached linker never deviates from the oracle by one bit."""
        uncached, cached, graph = _pair(
            tiny_ckb, recency_propagation=propagation
        )
        rng = random.Random(seed)
        now = 0.0
        alias = 0
        for _ in range(150):
            op = rng.random()
            if op < 0.55:
                _assert_identical(
                    uncached,
                    cached,
                    rng.choice(_SURFACES),
                    rng.choice((10, 11, 12)),
                    now,
                )
            elif op < 0.70:
                now += rng.uniform(0.0, 1.5) * DAY  # window slides
            elif op < 0.80:
                tiny_ckb.link_tweet(
                    rng.randrange(7), user=rng.choice((10, 11, 12)), timestamp=now
                )
                uncached.invalidate_influence_cache()
                cached.invalidate_influence_cache()
            elif op < 0.86:
                alias += 1
                tiny_ckb.kb.add_surface_form(f"alias{alias}", rng.randrange(7))
            elif op < 0.92:
                graph.add_edge(rng.randrange(13), rng.randrange(13))
            elif op < 0.96:
                now = max(0.0, now - 2 * DAY)  # replay restarts
            else:
                tiny_ckb.prune_before(now - 10 * DAY)
                uncached.invalidate_influence_cache()
                cached.invalidate_influence_cache()
        # one final sweep over every surface at the final clock
        for surface in _SURFACES:
            _assert_identical(uncached, cached, surface, 11, now)

    def test_confirm_link_feedback_loop(self, tiny_ckb):
        """The online feedback path (confirm_link on the cached linker
        itself) flows through the shared ckb and stays bit-identical."""
        uncached, cached, _ = _pair(tiny_ckb)
        for step in range(30):
            now = (8 + step / 10) * DAY
            _assert_identical(uncached, cached, "jordan", 10, now)
            if step % 3 == 0:
                # mutate through the *cached* linker's feedback API; the
                # oracle shares the ckb, so only LRU state needs syncing
                cached.confirm_link(step % 7, user=11, timestamp=now)
                uncached.invalidate_influence_cache()
                cached.invalidate_influence_cache()


class TestInvalidationExactness:
    """Each mutator invalidates its dependents — and nothing else."""

    def _warm(self, cached, now=8 * DAY):
        cached.link("jordan", 10, now)
        cached.link("jordan", 10, now)  # second pass: everything memoized

    def _delta(self, cached, now=8 * DAY):
        before = {
            name: PERF.counter(name)
            for name in (
                "score_cache.candidates.hit",
                "score_cache.candidates.miss",
                "score_cache.popularity.hit",
                "score_cache.popularity.miss",
                "score_cache.interest.hit",
                "score_cache.interest.miss",
            )
        }
        cached.link("jordan", 10, now)
        return {
            name: PERF.counter(name) - count for name, count in before.items()
        }

    def test_warm_path_all_hits(self, tiny_ckb):
        _, cached, _ = _pair(tiny_ckb)
        self._warm(cached)
        delta = self._delta(cached)
        assert delta["score_cache.candidates.hit"] == 1
        assert delta["score_cache.candidates.miss"] == 0
        assert delta["score_cache.popularity.hit"] == 1
        assert delta["score_cache.popularity.miss"] == 0
        assert delta["score_cache.interest.hit"] == 1
        assert delta["score_cache.interest.miss"] == 0

    def test_kb_bump_invalidates_candidates_only(self, tiny_ckb):
        _, cached, _ = _pair(tiny_ckb)
        self._warm(cached)
        tiny_ckb.kb.add_surface_form("unrelated", 5)  # bumps kb.epoch
        delta = self._delta(cached)
        assert delta["score_cache.candidates.miss"] == 1
        # the recomputed candidate tuple is unchanged, so downstream
        # value-keyed lookups still hit — popularity/interest untouched
        assert delta["score_cache.popularity.hit"] == 1
        assert delta["score_cache.interest.hit"] == 1

    def test_link_bump_invalidates_popularity_and_interest(self, tiny_ckb):
        _, cached, _ = _pair(tiny_ckb)
        self._warm(cached)
        tiny_ckb.link_tweet(5, user=12, timestamp=8 * DAY)  # bumps link_epoch
        delta = self._delta(cached)
        assert delta["score_cache.candidates.hit"] == 1
        assert delta["score_cache.popularity.miss"] == 1
        assert delta["score_cache.interest.miss"] == 1

    def test_graph_bump_invalidates_interest_only(self, tiny_ckb):
        _, cached, graph = _pair(tiny_ckb)
        self._warm(cached)
        assert graph.add_edge(11, 10)  # bumps graph.epoch
        delta = self._delta(cached)
        assert delta["score_cache.candidates.hit"] == 1
        assert delta["score_cache.popularity.hit"] == 1
        assert delta["score_cache.interest.miss"] == 1

    def test_window_slide_leaves_epoch_caches_alone(self, tiny_ckb):
        """Time moving forward is not a structural mutation: only the
        recency layer reacts (through the tracker), the memo tables hit."""
        _, cached, _ = _pair(tiny_ckb)
        self._warm(cached)
        delta = self._delta(cached, now=9 * DAY)
        assert delta["score_cache.candidates.hit"] == 1
        assert delta["score_cache.popularity.hit"] == 1
        assert delta["score_cache.interest.hit"] == 1
