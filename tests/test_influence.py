"""User influence (Eq. 6 / Eq. 7) tests on the Fig.-1 miniature.

tiny_ckb users: 10 ≈ @NBAOfficial (9 tweets on e0, 1 on e4),
11 ≈ ML expert (4 tweets on e1, 1 stray on e0), 12 ≈ sneakerhead (3 on e2).
Candidate set of "jordan": {0, 1, 2}.
"""

import math

import pytest

from repro.core.influence import (
    entropy_influence,
    influence_scores,
    tfidf_influence,
    top_influential_users,
)

CANDIDATES = (0, 1, 2)


class TestTfidfInfluence:
    def test_hand_computed_nba_official(self, tiny_ckb):
        # share 9/10, mentions 1 of 3 candidates -> idf log(3)
        expected = (9 / 10) * math.log(3)
        assert tfidf_influence(tiny_ckb, 10, 0, CANDIDATES) == pytest.approx(expected)

    def test_hand_computed_ml_expert_in_basketball(self, tiny_ckb):
        # share 1/10, mentions 2 of 3 candidates -> idf log(3/2)
        expected = (1 / 10) * math.log(3 / 2)
        assert tfidf_influence(tiny_ckb, 11, 0, CANDIDATES) == pytest.approx(expected)

    def test_non_member_is_zero(self, tiny_ckb):
        assert tfidf_influence(tiny_ckb, 12, 0, CANDIDATES) == 0.0

    def test_empty_community_is_zero(self, tiny_ckb):
        assert tfidf_influence(tiny_ckb, 10, 3, CANDIDATES) == 0.0

    def test_mentioning_all_candidates_zeroes_idf(self, tiny_ckb):
        tiny_ckb.link_tweet(1, user=10, timestamp=0.0)
        tiny_ckb.link_tweet(2, user=10, timestamp=0.0)
        assert tfidf_influence(tiny_ckb, 10, 0, CANDIDATES) == 0.0


class TestEntropyInfluence:
    def test_fully_discriminative_user_maximal(self, tiny_ckb):
        # user 10 only tweets candidate e0 -> entropy 0 -> minimal discount
        assert entropy_influence(tiny_ckb, 10, 0, CANDIDATES) == pytest.approx(
            (9 / 10) / 2.0
        )

    def test_hand_computed_biased_user(self, tiny_ckb):
        # user 11: candidate counts (1, 4, 0) -> H = -(0.2 ln .2 + .8 ln .8)
        entropy = -(0.2 * math.log(0.2) + 0.8 * math.log(0.8))
        expected = (4 / 4) / (2.0 + entropy)
        assert entropy_influence(tiny_ckb, 11, 1, CANDIDATES) == pytest.approx(
            expected, rel=1e-6
        )

    def test_occasional_off_topic_posting_tolerated(self, tiny_ckb):
        """The paper's argument for entropy over tf-idf (Sec. 4.1.2).

        Compare how much influence a biased-but-impure user (user 11: 4
        tweets on e1, 1 stray on e0) *retains* relative to a perfectly
        clean user with the same tweet share: the entropy estimator must
        forgive the stray posting far more than tf-idf does.
        """
        tfidf = tfidf_influence(tiny_ckb, 11, 1, CANDIDATES)
        entropy = entropy_influence(tiny_ckb, 11, 1, CANDIDATES)
        share = 4 / 4
        tfidf_clean = share * math.log(len(CANDIDATES))
        entropy_clean = share / 2.0
        assert entropy / entropy_clean > 2 * (tfidf / tfidf_clean)

    def test_non_member_zero(self, tiny_ckb):
        assert entropy_influence(tiny_ckb, 12, 1, CANDIDATES) == 0.0


class TestTopInfluentialUsers:
    def test_ranking(self, tiny_ckb):
        top = top_influential_users(tiny_ckb, 0, CANDIDATES, k=2, method="entropy")
        assert top[0] == 10  # @NBAOfficial dominates its community

    def test_k_limits_result(self, tiny_ckb):
        assert len(top_influential_users(tiny_ckb, 0, CANDIDATES, k=1)) == 1

    def test_short_community(self, tiny_ckb):
        top = top_influential_users(tiny_ckb, 2, CANDIDATES, k=10)
        assert top == [12]

    def test_empty_community(self, tiny_ckb):
        assert top_influential_users(tiny_ckb, 5, CANDIDATES, k=3) == []

    def test_unknown_method_rejected(self, tiny_ckb):
        with pytest.raises(ValueError):
            top_influential_users(tiny_ckb, 0, CANDIDATES, k=3, method="magic")

    def test_deterministic_tie_break(self, tiny_ckb):
        tiny_ckb.link_tweet(5, user=3, timestamp=0.0)
        tiny_ckb.link_tweet(5, user=1, timestamp=0.0)
        top = top_influential_users(tiny_ckb, 5, (5, 0), k=2, method="tfidf")
        assert top == [1, 3]  # equal influence -> ascending user id


class TestInfluenceScores:
    def test_scores_cover_community(self, tiny_ckb):
        scores = influence_scores(tiny_ckb, 0, CANDIDATES)
        assert set(scores) == {10, 11}
