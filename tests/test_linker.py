"""SocialTemporalLinker end-to-end behaviour on the Fig.-1 miniature."""

import pytest

from repro.config import DAY, LinkerConfig
from repro.core.linker import LinkResult, ScoredCandidate, SocialTemporalLinker
from repro.graph.digraph import DiGraph
from repro.graph.transitive_closure import build_transitive_closure_incremental
from repro.stream.tweet import MentionSpan, Tweet


@pytest.fixture
def social_graph():
    """User 0 follows @NBAOfficial (10); user 5 follows the ML expert (11);
    user 6 follows nobody (isolated information seeker)."""
    graph = DiGraph(13)
    graph.add_edge(0, 10)
    graph.add_edge(5, 11)
    graph.add_edge(1, 10)
    graph.add_edge(1, 12)
    return graph


@pytest.fixture
def linker(tiny_ckb, social_graph):
    config = LinkerConfig(burst_threshold=2, influential_users=2)
    return SocialTemporalLinker(tiny_ckb, social_graph, config=config)


class TestLinking:
    def test_social_context_disambiguates(self, linker):
        # user 0 follows @NBAOfficial -> basketball Jordan
        result = linker.link("jordan", user=0, now=100 * DAY)
        assert result.best.entity_id == 0

    def test_different_user_different_entity(self, linker):
        # user 5 follows the ML expert -> ML Jordan
        result = linker.link("jordan", user=5, now=100 * DAY)
        assert result.best.entity_id == 1

    def test_isolated_user_falls_back_to_popularity(self, linker):
        # user 6 has no social signal and nothing is recent at day 100:
        # popularity picks e0 (10 of 17 tweets)
        result = linker.link("jordan", user=6, now=100 * DAY)
        assert result.best.entity_id == 0
        assert result.best.interest == 0.0

    def test_unknown_surface_empty_result(self, linker):
        result = linker.link("qqqqqqq", user=0, now=0.0)
        assert result.ranked == ()
        assert result.best is None

    def test_fuzzy_surface_still_linked(self, linker):
        result = linker.link("jordon", user=0, now=100 * DAY)
        assert result.best.entity_id == 0

    def test_ranked_scores_descending(self, linker):
        result = linker.link("jordan", user=0, now=100 * DAY)
        scores = [c.score for c in result.ranked]
        assert scores == sorted(scores, reverse=True)

    def test_recency_steers_during_burst(self, tiny_ckb, social_graph):
        # sneaker drop: e2 bursts now; isolated user 6 should follow recency
        config = LinkerConfig(
            alpha=0.0, beta=1.0, gamma=0.0, burst_threshold=2,
            recency_propagation=False,
        )
        linker = SocialTemporalLinker(tiny_ckb, social_graph, config=config)
        now = 200 * DAY
        for i in range(5):
            linker.confirm_link(2, user=20 + i, timestamp=now - 0.1 * DAY)
        result = linker.link("jordan", user=6, now=now)
        assert result.best.entity_id == 2


class TestLinkTweet:
    def test_links_each_mention_independently(self, linker):
        tweet = Tweet(
            tweet_id=1,
            user=0,
            timestamp=100 * DAY,
            text="jordan and the chicago bulls",
            mentions=(MentionSpan("jordan"), MentionSpan("chicago bulls")),
        )
        results = linker.link_tweet(tweet)
        assert len(results) == 2
        assert results[0].result.best.entity_id == 0
        assert results[1].result.best.entity_id == 3

    def test_empty_mentions(self, linker):
        tweet = Tweet(tweet_id=1, user=0, timestamp=0.0, text="hello")
        assert linker.link_tweet(tweet) == []


class TestTopK:
    def test_top_k_limit(self, linker):
        result = linker.link("jordan", user=0, now=100 * DAY)
        assert len(result.top_k(2)) == 2

    def test_threshold_filters(self, linker):
        result = linker.link("jordan", user=6, now=100 * DAY)
        # isolated user: every candidate scores <= beta + gamma
        bound = linker.config.no_interest_bound
        assert result.top_k(3, threshold=bound + 1.0) == []


class TestAbstentionEdgeCases:
    """Appendix-D false-positive guard, at its boundary conditions."""

    def test_empty_candidate_set(self, linker):
        result = linker.link("no such surface", user=0, now=100 * DAY)
        assert result.ranked == ()
        assert result.best is None
        assert result.top_k(5) == []
        assert result.top_k(5, threshold=0.0) == []

    def test_scores_exactly_at_bound_are_filtered(self, linker):
        # the Appendix-D guard is a *strict* inequality: a score equal to
        # beta + gamma is indistinguishable from "no measured interest"
        # and must be dropped
        bound = linker.config.no_interest_bound
        result = LinkResult(
            surface="jordan",
            user=6,
            timestamp=100 * DAY,
            ranked=(
                ScoredCandidate(
                    entity_id=0, score=bound, interest=0.0,
                    recency=0.5, popularity=0.5,
                ),
                ScoredCandidate(
                    entity_id=1, score=bound, interest=0.0,
                    recency=0.4, popularity=0.6,
                ),
            ),
        )
        assert result.top_k(2, threshold=bound) == []
        # strictly above the bound survives
        above = LinkResult(
            surface="jordan",
            user=6,
            timestamp=100 * DAY,
            ranked=(
                ScoredCandidate(
                    entity_id=0, score=bound + 1e-9, interest=1e-9,
                    recency=0.5, popularity=0.5,
                ),
            ),
        )
        assert [c.entity_id for c in above.top_k(2, threshold=bound)] == [0]

    def test_top_k_zero_returns_empty(self, linker):
        result = linker.link("jordan", user=0, now=100 * DAY)
        assert result.top_k(0) == []
        assert result.top_k(0, threshold=0.0) == []


class TestFeedback:
    def test_confirm_link_updates_counts(self, linker, tiny_ckb):
        before = tiny_ckb.count(1)
        linker.confirm_link(1, user=5, timestamp=50 * DAY)
        assert tiny_ckb.count(1) == before + 1

    def test_confirm_invalidates_influence_cache(self, linker, tiny_ckb):
        linker.link("jordan", user=0, now=100 * DAY)  # warm the cache
        # a new prolific, discriminative user floods e2's community
        for i in range(30):
            linker.confirm_link(2, user=40, timestamp=float(i))
        key_suffix = (0, 1, 2)
        fresh = linker._influential_users(2, key_suffix, key_suffix)
        assert 40 in fresh

    def test_provider_injection(self, tiny_ckb, social_graph):
        closure = build_transitive_closure_incremental(social_graph)
        linker = SocialTemporalLinker(
            tiny_ckb,
            social_graph,
            config=LinkerConfig(burst_threshold=2),
            reachability=closure,
        )
        assert linker.link("jordan", user=0, now=100 * DAY).best.entity_id == 0


class TestInfluentialCacheBound:
    """The influential-user cache is LRU-bounded (config.influential_cache_size)."""

    def _linker(self, tiny_ckb, social_graph, size):
        config = LinkerConfig(
            burst_threshold=2, influential_users=2, influential_cache_size=size
        )
        return SocialTemporalLinker(tiny_ckb, social_graph, config=config)

    def test_cache_never_exceeds_bound(self, tiny_ckb, social_graph):
        linker = self._linker(tiny_ckb, social_graph, size=2)
        for day in (8, 9, 10):
            linker.link("jordan", user=0, now=day * DAY)  # 3 keys per call
            linker.link("nba", user=0, now=day * DAY)
        assert len(linker._influential_cache) <= 2

    def test_eviction_is_least_recently_used(self, tiny_ckb, social_graph):
        linker = self._linker(tiny_ckb, social_graph, size=3)
        linker.link("jordan", user=0, now=8 * DAY)  # keys for e0, e1, e2
        assert set(linker._influential_cache) == {
            (0, (0, 1, 2)), (1, (0, 1, 2)), (2, (0, 1, 2))
        }
        linker._influential_users(0, (0, 1, 2), (0, 1, 2))  # touch e0
        linker.link("nba", user=0, now=8 * DAY)  # inserts e4, evicts LRU
        assert (1, (0, 1, 2)) not in linker._influential_cache
        assert (0, (0, 1, 2)) in linker._influential_cache
        assert (4, (4,)) in linker._influential_cache
        assert len(linker._influential_cache) == 3

    def test_bounded_results_match_unbounded(self, tiny_ckb, social_graph):
        bounded = self._linker(tiny_ckb, social_graph, size=1)
        unbounded = self._linker(tiny_ckb, social_graph, size=4096)
        for surface, user in (("jordan", 0), ("jordan", 5), ("nba", 0), ("jordan", 0)):
            a = bounded.link(surface, user, now=8 * DAY)
            b = unbounded.link(surface, user, now=8 * DAY)
            assert a.candidates == b.candidates
            for ca, cb in zip(a.ranked, b.ranked):
                assert ca.score == pytest.approx(cb.score)

    def test_invalid_bound_rejected(self):
        with pytest.raises(ValueError):
            LinkerConfig(influential_cache_size=0)
