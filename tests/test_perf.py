"""Perf registry: counters, gated timers, percentiles, snapshots."""

import pytest

from repro.perf import PERF, PerfRegistry, percentile


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 50.0) == 0.0

    def test_single_sample(self):
        assert percentile([7.0], 0.0) == 7.0
        assert percentile([7.0], 100.0) == 7.0

    def test_nearest_rank(self):
        samples = [float(v) for v in range(1, 11)]  # 1..10
        assert percentile(samples, 50.0) == 5.0
        assert percentile(samples, 95.0) == 10.0
        assert percentile(samples, 10.0) == 1.0

    def test_unsorted_input(self):
        assert percentile([3.0, 1.0, 2.0], 100.0) == 3.0

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101.0)
        with pytest.raises(ValueError):
            percentile([1.0], -1.0)

    def test_all_equal_samples(self):
        """Every percentile of a constant distribution is that constant —
        pinned so the repro.obs migration can assert parity against it."""
        samples = [4.2] * 9
        for q in (0.0, 1.0, 50.0, 99.0, 100.0):
            assert percentile(samples, q) == 4.2

    def test_two_samples_nearest_rank(self):
        assert percentile([1.0, 2.0], 50.0) == 1.0
        assert percentile([1.0, 2.0], 51.0) == 2.0
        assert percentile([1.0, 2.0], 0.0) == 1.0
        assert percentile([1.0, 2.0], 100.0) == 2.0

    def test_empty_is_zero_at_every_quantile(self):
        for q in (0.0, 50.0, 100.0):
            assert percentile([], q) == 0.0


class TestCounters:
    def test_incr_creates_and_accumulates(self):
        registry = PerfRegistry()
        registry.incr("bfs")
        registry.incr("bfs", 4)
        assert registry.counter("bfs") == 5

    def test_counters_record_while_disabled(self):
        registry = PerfRegistry()
        assert not registry.enabled
        registry.incr("always")
        assert registry.counter("always") == 1

    def test_unknown_counter_is_zero(self):
        assert PerfRegistry().counter("nope") == 0

    def test_hit_rate(self):
        registry = PerfRegistry()
        registry.incr("cache.hit", 3)
        registry.incr("cache.miss", 1)
        assert registry.hit_rate("cache") == pytest.approx(0.75)

    def test_hit_rate_unconsulted_cache(self):
        assert PerfRegistry().hit_rate("cold") == 0.0


class TestTimers:
    def test_time_block_noop_when_disabled(self):
        registry = PerfRegistry()
        with registry.time_block("stage"):
            pass
        assert registry.samples("stage") == []

    def test_time_block_records_when_enabled(self):
        registry = PerfRegistry()
        registry.enable()
        with registry.time_block("stage"):
            pass
        samples = registry.samples("stage")
        assert len(samples) == 1
        assert samples[0] >= 0.0

    def test_observe_ignores_switch(self):
        registry = PerfRegistry()
        registry.observe("stage", 0.25)
        assert registry.samples("stage") == [0.25]

    def test_bounded_window(self):
        registry = PerfRegistry(max_samples=3)
        for v in range(5):
            registry.observe("stage", float(v))
        assert registry.samples("stage") == [2.0, 3.0, 4.0]

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            PerfRegistry(max_samples=0)

    def test_timer_stats(self):
        registry = PerfRegistry()
        for v in (1.0, 2.0, 3.0, 4.0):
            registry.observe("stage", v)
        stats = registry.timer_stats("stage")
        assert stats["count"] == 4.0
        assert stats["total_s"] == pytest.approx(10.0)
        assert stats["mean_s"] == pytest.approx(2.5)
        assert stats["p50_s"] == 2.0
        assert stats["p99_s"] == 4.0

    def test_timer_stats_empty(self):
        stats = PerfRegistry().timer_stats("stage")
        assert stats["count"] == 0.0
        assert stats["mean_s"] == 0.0

    def test_timer_stats_single_sample(self):
        registry = PerfRegistry()
        registry.observe("stage", 0.5)
        stats = registry.timer_stats("stage")
        assert stats["count"] == 1.0
        assert stats["mean_s"] == stats["p50_s"] == stats["p99_s"] == 0.5

    def test_timer_stats_all_equal_samples(self):
        registry = PerfRegistry()
        for _ in range(5):
            registry.observe("stage", 0.25)
        stats = registry.timer_stats("stage")
        assert stats["p50_s"] == stats["p99_s"] == 0.25
        assert stats["total_s"] == pytest.approx(1.25)


class TestSnapshot:
    def test_snapshot_shape(self):
        registry = PerfRegistry()
        registry.incr("cache.hit", 2)
        registry.incr("cache.miss", 2)
        registry.incr("bfs")
        registry.observe("stage", 0.5)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"bfs": 1, "cache.hit": 2, "cache.miss": 2}
        assert snapshot["cache_hit_rates"] == {"cache": 0.5}
        assert snapshot["timers"]["stage"]["count"] == 1.0

    def test_reset_keeps_switch(self):
        registry = PerfRegistry()
        registry.enable()
        registry.incr("x")
        registry.observe("stage", 1.0)
        registry.reset()
        assert registry.counter("x") == 0
        assert registry.samples("stage") == []
        assert registry.enabled


class TestGlobalRegistryHooks:
    def test_linker_stages_timed(self, small_context):
        """The link() hot path records its stage breakdown when enabled."""
        linker = small_context.social_temporal()._linker
        tweet = small_context.test_dataset.tweets[0]
        mention = tweet.mentions[0]
        PERF.reset()
        PERF.enable()
        try:
            linker.link(mention.surface, tweet.user, tweet.timestamp)
        finally:
            PERF.disable()
            stages = {
                name
                for name in (
                    "link.candidates",
                    "link.interest",
                    "link.recency",
                    "link.popularity",
                    "link.combine",
                )
                if PERF.samples(name)
            }
            PERF.reset()
        assert "link.candidates" in stages
        assert "link.combine" in stages
