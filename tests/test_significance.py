"""Paired bootstrap significance tests."""

import random

import pytest

from repro.eval.significance import (
    accuracy_confidence_interval,
    bootstrap_compare,
    paired_outcomes,
)
from repro.stream.tweet import MentionSpan, Tweet


def make_dataset(n, correct_a_rate, correct_b_rate, rng):
    """n single-mention tweets; methods a/b correct at given rates."""
    tweets = []
    predictions_a = {}
    predictions_b = {}
    for tweet_id in range(n):
        truth = tweet_id % 5
        tweets.append(
            Tweet(
                tweet_id=tweet_id, user=0, timestamp=float(tweet_id), text="m",
                mentions=(MentionSpan("m", true_entity=truth),),
            )
        )
        predictions_a[tweet_id] = [
            truth if rng.random() < correct_a_rate else truth + 100
        ]
        predictions_b[tweet_id] = [
            truth if rng.random() < correct_b_rate else truth + 100
        ]
    return tweets, predictions_a, predictions_b


class TestPairedOutcomes:
    def test_alignment(self):
        tweets, pa, pb = make_dataset(10, 1.0, 0.0, random.Random(0))
        outcomes = paired_outcomes(tweets, pa, pb)
        assert len(outcomes) == 10
        assert all(a and not b for a, b in outcomes)

    def test_missing_predictions_count_wrong(self):
        tweets, pa, _ = make_dataset(4, 1.0, 1.0, random.Random(0))
        outcomes = paired_outcomes(tweets, pa, {})
        assert all(a and not b for a, b in outcomes)


class TestBootstrapCompare:
    def test_clear_difference_is_significant(self):
        rng = random.Random(1)
        tweets, pa, pb = make_dataset(400, 0.8, 0.5, rng)
        result = bootstrap_compare(tweets, pa, pb, num_resamples=500, rng=rng)
        assert result.difference > 0.2
        assert result.significant
        assert result.p_value < 0.05
        assert result.ci_low <= result.difference <= result.ci_high

    def test_identical_methods_not_significant(self):
        rng = random.Random(2)
        tweets, pa, _ = make_dataset(300, 0.7, 0.7, rng)
        result = bootstrap_compare(tweets, pa, pa, num_resamples=300, rng=rng)
        assert result.difference == 0.0
        assert not result.significant

    def test_tiny_difference_not_significant(self):
        rng = random.Random(3)
        tweets, pa, pb = make_dataset(80, 0.71, 0.69, rng)
        result = bootstrap_compare(tweets, pa, pb, num_resamples=400, rng=rng)
        assert not result.significant or abs(result.difference) > 0.05

    def test_direction_reversed(self):
        rng = random.Random(4)
        tweets, pa, pb = make_dataset(400, 0.4, 0.8, rng)
        result = bootstrap_compare(tweets, pa, pb, num_resamples=400, rng=rng)
        assert result.difference < 0
        assert result.significant

    def test_validation(self):
        tweets, pa, pb = make_dataset(5, 1.0, 1.0, random.Random(0))
        with pytest.raises(ValueError):
            bootstrap_compare(tweets, pa, pb, confidence=2.0)
        with pytest.raises(ValueError):
            bootstrap_compare(tweets, pa, pb, num_resamples=2)
        with pytest.raises(ValueError):
            bootstrap_compare([], {}, {})


class TestAccuracyCI:
    def test_interval_brackets_accuracy(self):
        rng = random.Random(5)
        tweets, pa, _ = make_dataset(300, 0.75, 0.0, rng)
        accuracy, low, high = accuracy_confidence_interval(
            tweets, pa, num_resamples=400, rng=rng
        )
        assert low <= accuracy <= high
        assert 0.65 < accuracy < 0.85
        assert high - low < 0.15

    def test_empty_dataset_rejected(self):
        with pytest.raises(ValueError):
            accuracy_confidence_interval([], {})
