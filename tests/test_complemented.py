"""Complemented knowledgebase (Definition 5) tests."""

import pytest

from repro.config import DAY
from repro.kb.complemented import ComplementedKnowledgebase
from repro.kb.knowledgebase import Knowledgebase


@pytest.fixture
def ckb():
    kb = Knowledgebase()
    kb.add_entity("a")
    kb.add_entity("b")
    return ComplementedKnowledgebase(kb)


class TestLinking:
    def test_counts_and_communities(self, ckb):
        ckb.link_tweet(0, user=1, timestamp=0.0)
        ckb.link_tweet(0, user=2, timestamp=1.0)
        ckb.link_tweet(0, user=1, timestamp=2.0)
        assert ckb.count(0) == 3
        assert ckb.community(0) == {1, 2}
        assert ckb.community_size(0) == 2
        assert ckb.user_count(0, 1) == 2
        assert ckb.user_count(0, 99) == 0

    def test_unknown_entity_rejected(self, ckb):
        with pytest.raises(KeyError):
            ckb.link_tweet(5, user=1, timestamp=0.0)

    def test_unlinked_entity_defaults(self, ckb):
        assert ckb.count(1) == 0
        assert ckb.community(1) == set()
        assert ckb.tweets_of(1) == []

    def test_bulk_link(self, ckb):
        ckb.bulk_link([(0, 1, 0.0), (1, 2, 1.0)])
        assert ckb.total_links == 2
        assert ckb.linked_entities() == [0, 1]

    def test_tweets_keep_metadata(self, ckb):
        ckb.link_tweet(0, user=7, timestamp=42.0, tweet_id=99)
        record = ckb.tweets_of(0)[0]
        assert (record.user, record.timestamp, record.tweet_id) == (7, 42.0, 99)


class TestRecencyWindow:
    def test_recent_count_window(self, ckb):
        for day in range(10):
            ckb.link_tweet(0, user=1, timestamp=day * DAY)
        # window of 3 days ending at day 9 covers days 6, 7, 8, 9
        assert ckb.recent_count(0, now=9 * DAY, window=3 * DAY) == 4

    def test_future_tweets_excluded(self, ckb):
        ckb.link_tweet(0, user=1, timestamp=10 * DAY)
        assert ckb.recent_count(0, now=5 * DAY, window=3 * DAY) == 0

    def test_out_of_order_insertion(self, ckb):
        ckb.link_tweet(0, user=1, timestamp=5 * DAY)
        ckb.link_tweet(0, user=1, timestamp=1 * DAY)
        ckb.link_tweet(0, user=1, timestamp=3 * DAY)
        assert ckb.recent_count(0, now=5 * DAY, window=2.5 * DAY) == 2

    def test_empty_entity(self, ckb):
        assert ckb.recent_count(1, now=0.0, window=DAY) == 0

    def test_boundary_inclusive(self, ckb):
        ckb.link_tweet(0, user=1, timestamp=7 * DAY)
        assert ckb.recent_count(0, now=10 * DAY, window=3 * DAY) == 1


class TestPruning:
    def test_prune_removes_old_links(self, ckb):
        for day in range(10):
            ckb.link_tweet(0, user=1, timestamp=day * DAY)
        removed = ckb.prune_before(5 * DAY)
        assert removed == 5
        assert ckb.count(0) == 5
        assert ckb.total_links == 5
        assert ckb.recent_count(0, 9 * DAY, 100 * DAY) == 5

    def test_prune_drops_empty_entities(self, ckb):
        ckb.link_tweet(0, user=1, timestamp=0.0)
        ckb.link_tweet(1, user=2, timestamp=10 * DAY)
        ckb.prune_before(5 * DAY)
        assert ckb.linked_entities() == [1]
        assert ckb.community(0) == set()

    def test_prune_keeps_user_counts_consistent(self, ckb):
        ckb.link_tweet(0, user=1, timestamp=0.0)
        ckb.link_tweet(0, user=1, timestamp=10 * DAY)
        ckb.link_tweet(0, user=2, timestamp=1.0 * DAY)
        ckb.prune_before(5 * DAY)
        assert ckb.user_count(0, 1) == 1
        assert ckb.user_count(0, 2) == 0
        assert ckb.community(0) == {1}

    def test_prune_noop(self, ckb):
        ckb.link_tweet(0, user=1, timestamp=10 * DAY)
        assert ckb.prune_before(0.0) == 0
        assert ckb.count(0) == 1
