"""Micro-batch coalescing front end: batching behaviour, parity, bridge."""

import asyncio

import pytest

from repro.config import DAY, LinkerConfig
from repro.core.batch import LinkRequest, MicroBatchLinker
from repro.core.linker import SocialTemporalLinker
from repro.core.microbatch import MicroBatchFrontEnd
from repro.errors import IndexUnavailableError
from repro.graph.digraph import DiGraph
from repro.obs.metrics import METRICS


@pytest.fixture
def backend(tiny_ckb):
    graph = DiGraph(13)
    graph.add_edge(0, 10)
    graph.add_edge(5, 11)
    linker = SocialTemporalLinker(
        tiny_ckb, graph, config=LinkerConfig(burst_threshold=2, influential_users=2)
    )
    return MicroBatchLinker(linker)


def _requests(n=5):
    base = [
        LinkRequest("jordan", user=0, now=8 * DAY),
        LinkRequest("jordan", user=5, now=8 * DAY),
        LinkRequest("nba", user=0, now=8 * DAY),
        LinkRequest("jordan", user=0, now=2 * DAY),
        LinkRequest("qqqqqq", user=0, now=0.0),
    ]
    return base[:n]


class _ExplodingBackend:
    def link_batch(self, requests):
        raise RuntimeError("backend down")


class _RecordingBackend:
    """Wraps a real backend, remembering every batch it was handed."""

    def __init__(self, inner):
        self.inner = inner
        self.batches = []

    def link_batch(self, requests):
        self.batches.append(list(requests))
        return self.inner.link_batch(requests)


class TestValidation:
    def test_negative_delay_rejected(self, backend):
        with pytest.raises(ValueError):
            MicroBatchFrontEnd(backend, max_delay_s=-0.001)

    def test_zero_batch_rejected(self, backend):
        with pytest.raises(ValueError):
            MicroBatchFrontEnd(backend, max_batch=0)

    def test_link_sync_requires_start(self, backend):
        front_end = MicroBatchFrontEnd(backend)
        with pytest.raises(IndexUnavailableError):
            front_end.link_sync(_requests(1)[0])


class TestCoalescing:
    def test_concurrent_arrivals_share_one_batch(self, backend):
        recorder = _RecordingBackend(backend)
        front_end = MicroBatchFrontEnd(recorder, max_delay_s=0.05, max_batch=64)
        batches_before = METRICS.counter("microbatch.batches")

        async def drive():
            results = await asyncio.gather(
                *(front_end.link(r) for r in _requests())
            )
            await front_end.drain()
            return results

        results = asyncio.run(drive())
        assert len(recorder.batches) == 1
        assert len(recorder.batches[0]) == len(_requests())
        assert METRICS.counter("microbatch.batches") == batches_before + 1
        assert [r.surface for r in results] == [r.surface for r in _requests()]

    def test_max_batch_flushes_without_waiting(self, backend):
        recorder = _RecordingBackend(backend)
        # delay is effectively forever: only the size trigger can flush
        front_end = MicroBatchFrontEnd(recorder, max_delay_s=30.0, max_batch=2)

        async def drive():
            results = await asyncio.gather(
                *(front_end.link(r) for r in _requests(4))
            )
            await front_end.drain()
            return results

        results = asyncio.run(drive())
        assert [len(b) for b in recorder.batches] == [2, 2]
        assert len(results) == 4

    def test_results_match_direct_backend(self, backend):
        front_end = MicroBatchFrontEnd(backend, max_delay_s=0.01)

        async def drive():
            results = await asyncio.gather(
                *(front_end.link(r) for r in _requests())
            )
            await front_end.drain()
            return results

        results = asyncio.run(drive())
        expected = backend.link_batch(_requests())
        for a, b in zip(results, expected):
            assert a.candidates == b.candidates
            for ca, cb in zip(a.ranked, b.ranked):
                assert ca.entity_id == cb.entity_id
                assert ca.score == cb.score

    def test_batch_size_histogram_recorded(self, backend):
        front_end = MicroBatchFrontEnd(backend, max_delay_s=0.01)

        async def drive():
            await asyncio.gather(*(front_end.link(r) for r in _requests(3)))
            await front_end.drain()

        asyncio.run(drive())
        histogram = METRICS.histogram("microbatch.batch_size")
        assert histogram is not None
        assert histogram.count >= 1


class TestFailure:
    def test_backend_error_reaches_every_waiter(self):
        front_end = MicroBatchFrontEnd(_ExplodingBackend(), max_delay_s=0.01)

        async def drive():
            futures = [
                asyncio.ensure_future(front_end.link(r)) for r in _requests(3)
            ]
            done = await asyncio.gather(*futures, return_exceptions=True)
            await front_end.drain()
            return done

        outcomes = asyncio.run(drive())
        assert len(outcomes) == 3
        for outcome in outcomes:
            assert isinstance(outcome, RuntimeError)


class TestSyncBridge:
    def test_link_sync_round_trip(self, backend):
        front_end = MicroBatchFrontEnd(backend, max_delay_s=0.001)
        front_end.start()
        front_end.start()  # idempotent
        try:
            request = _requests(1)[0]
            result = front_end.link_sync(request)
            expected = backend.link_batch([request])[0]
            assert result.candidates == expected.candidates
            assert [c.score for c in result.ranked] == [
                c.score for c in expected.ranked
            ]
        finally:
            front_end.stop()

    def test_stop_then_link_sync_raises(self, backend):
        front_end = MicroBatchFrontEnd(backend, max_delay_s=0.001)
        front_end.start()
        front_end.stop()
        with pytest.raises(IndexUnavailableError):
            front_end.link_sync(_requests(1)[0])


class TestFromConfig:
    def test_knobs_come_from_config(self, backend):
        config = LinkerConfig(microbatch_max_delay_ms=7.0, microbatch_max_batch=9)
        front_end = MicroBatchFrontEnd.from_config(backend, config)
        assert front_end._max_delay_s == pytest.approx(0.007)
        assert front_end._max_batch == 9
