"""Candidate generation (exact + fuzzy) tests."""

from repro.core.candidates import CandidateGenerator


class TestExactLookup:
    def test_ambiguous_surface(self, tiny_kb):
        generator = CandidateGenerator(tiny_kb)
        assert set(generator.candidates("jordan")) == {0, 1, 2}

    def test_title_lookup(self, tiny_kb):
        generator = CandidateGenerator(tiny_kb)
        assert generator.candidates("chicago bulls") == (3,)

    def test_case_and_whitespace(self, tiny_kb):
        generator = CandidateGenerator(tiny_kb)
        assert set(generator.candidates(" Jordan ")) == {0, 1, 2}


class TestFuzzyFallback:
    def test_typo_recovers_candidates(self, tiny_kb):
        generator = CandidateGenerator(tiny_kb, max_edits=1)
        assert set(generator.candidates("jordon")) == {0, 1, 2}

    def test_exact_match_not_fuzzy_expanded(self, tiny_kb):
        # "nba" is exact; it must not pick up fuzzy neighbours
        generator = CandidateGenerator(tiny_kb, max_edits=2)
        assert generator.candidates("nba") == (4,)

    def test_hopeless_surface_yields_nothing(self, tiny_kb):
        generator = CandidateGenerator(tiny_kb, max_edits=1)
        assert generator.candidates("zzzzzzzzzz") == ()

    def test_zero_edits_disables_fuzzy(self, tiny_kb):
        generator = CandidateGenerator(tiny_kb, max_edits=0)
        assert generator.candidates("jordon") == ()

    def test_deduplicated_union(self, tiny_kb):
        # "icml" within distance 1 of... itself only; sanity on dedup path
        generator = CandidateGenerator(tiny_kb, max_edits=1)
        result = generator.candidates("icmls")
        assert result == (5,)


class TestRegistration:
    def test_register_surface_updates_both_paths(self, tiny_kb):
        generator = CandidateGenerator(tiny_kb, max_edits=1)
        generator.register_surface("goat", 0)
        assert generator.candidates("goat") == (0,)
        assert generator.candidates("goats") == (0,)  # fuzzy too
