"""Knowledgebase container tests."""

import pytest

from repro.kb.entity import EntityCategory
from repro.kb.knowledgebase import Knowledgebase


class TestEntities:
    def test_add_entity_assigns_dense_ids(self):
        kb = Knowledgebase()
        first = kb.add_entity("alpha")
        second = kb.add_entity("beta")
        assert (first.entity_id, second.entity_id) == (0, 1)
        assert kb.num_entities == 2

    def test_title_becomes_surface_form(self):
        kb = Knowledgebase()
        entity = kb.add_entity("Michael Jordan")
        assert kb.candidates("michael jordan") == (entity.entity_id,)

    def test_unknown_entity_raises(self):
        kb = Knowledgebase()
        with pytest.raises(KeyError):
            kb.entity(3)

    def test_category_and_topic_stored(self):
        kb = Knowledgebase()
        entity = kb.add_entity("x", category=EntityCategory.LOCATION, topic=2)
        assert kb.entity(entity.entity_id).category is EntityCategory.LOCATION
        assert kb.entity(entity.entity_id).topic == 2


class TestSurfaceForms:
    def test_many_to_many(self):
        kb = Knowledgebase()
        a = kb.add_entity("jordan (country)")
        b = kb.add_entity("michael jordan (basketball)")
        kb.add_surface_form("jordan", a.entity_id)
        kb.add_surface_form("jordan", b.entity_id)
        kb.add_surface_form("mj", b.entity_id)
        assert set(kb.candidates("jordan")) == {a.entity_id, b.entity_id}
        assert kb.candidates("mj") == (b.entity_id,)
        assert "jordan" in kb.surfaces_of(b.entity_id)

    def test_case_insensitive_lookup(self):
        kb = Knowledgebase()
        entity = kb.add_entity("NBA")
        assert kb.candidates("nba") == (entity.entity_id,)
        assert kb.candidates("  NBA ") == (entity.entity_id,)

    def test_duplicate_registration_is_noop(self):
        kb = Knowledgebase()
        entity = kb.add_entity("x")
        kb.add_surface_form("ex", entity.entity_id)
        kb.add_surface_form("ex", entity.entity_id)
        assert kb.candidates("ex") == (entity.entity_id,)

    def test_empty_surface_rejected(self):
        kb = Knowledgebase()
        entity = kb.add_entity("x")
        with pytest.raises(ValueError):
            kb.add_surface_form("   ", entity.entity_id)

    def test_unknown_mention_has_no_candidates(self):
        kb = Knowledgebase()
        kb.add_entity("x")
        assert kb.candidates("nothing") == ()

    def test_mentions_enumerates_vocabulary(self):
        kb = Knowledgebase()
        entity = kb.add_entity("alpha beta")
        kb.add_surface_form("ab", entity.entity_id)
        assert set(kb.mentions()) == {"alpha beta", "ab"}


class TestHyperlinksAndRelatedness:
    def test_inlinks_recorded(self):
        kb = Knowledgebase()
        a = kb.add_entity("a")
        b = kb.add_entity("b")
        kb.add_hyperlink(a.entity_id, b.entity_id)
        assert kb.inlinks(b.entity_id) == frozenset({a.entity_id})
        assert kb.inlinks(a.entity_id) == frozenset()

    def test_self_link_ignored(self):
        kb = Knowledgebase()
        a = kb.add_entity("a")
        kb.add_hyperlink(a.entity_id, a.entity_id)
        assert kb.inlinks(a.entity_id) == frozenset()

    def test_relatedness_uses_common_inlinks(self, tiny_kb):
        # basketball cluster pair vs cross-cluster pair
        same = tiny_kb.relatedness(0, 3)
        cross = tiny_kb.relatedness(0, 1)
        assert same > cross

    def test_descriptions(self):
        kb = Knowledgebase()
        entity = kb.add_entity("a", description=["x", "y"])
        assert kb.description(entity.entity_id) == ["x", "y"]
        kb.set_description(entity.entity_id, ["z"])
        assert kb.description(entity.entity_id) == ["z"]
