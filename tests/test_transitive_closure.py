"""Extended transitive closure: naive vs incremental vs exact (Algorithm 1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.digraph import DiGraph
from repro.graph.reachability import weighted_reachability
from repro.graph.transitive_closure import (
    build_transitive_closure_incremental,
    build_transitive_closure_naive,
    exact_followee_set,
)

from conftest import random_graph


def edge_list_strategy(max_nodes=9):
    """Random simple digraphs as (num_nodes, edges)."""
    return st.integers(min_value=2, max_value=max_nodes).flatmap(
        lambda n: st.tuples(
            st.just(n),
            st.lists(
                st.tuples(
                    st.integers(min_value=0, max_value=n - 1),
                    st.integers(min_value=0, max_value=n - 1),
                ).filter(lambda e: e[0] != e[1]),
                max_size=3 * n,
                unique=True,
            ),
        )
    )


def assert_closure_matches_exact(graph, closure, max_hops):
    for u in graph.nodes():
        for v in graph.nodes():
            if u == v:
                continue
            expected = weighted_reachability(graph, u, v, max_hops)
            assert closure.reachability(u, v) == pytest.approx(expected), (u, v)


class TestIncrementalMatchesExact:
    def test_diamond(self, diamond_graph):
        closure = build_transitive_closure_incremental(diamond_graph)
        assert_closure_matches_exact(diamond_graph, closure, 4)

    def test_chain(self, chain_graph):
        closure = build_transitive_closure_incremental(chain_graph)
        assert_closure_matches_exact(chain_graph, closure, 4)

    @pytest.mark.parametrize("backend", ["dense", "sparse"])
    def test_random_graph_both_backends(self, backend):
        graph = random_graph(25, 80, seed=3)
        closure = build_transitive_closure_incremental(graph, backend=backend)
        assert closure.backend == backend
        assert_closure_matches_exact(graph, closure, 4)

    @pytest.mark.parametrize("max_hops", [1, 2, 3])
    def test_hop_horizons(self, max_hops):
        graph = random_graph(15, 40, seed=7)
        closure = build_transitive_closure_incremental(graph, max_hops=max_hops)
        assert_closure_matches_exact(graph, closure, max_hops)

    @given(edge_list_strategy())
    @settings(max_examples=60, deadline=None)
    def test_property_random_graphs(self, spec):
        num_nodes, edges = spec
        graph = DiGraph.from_edges(num_nodes, edges)
        closure = build_transitive_closure_incremental(graph, max_hops=4)
        assert_closure_matches_exact(graph, closure, 4)

    def test_unknown_backend_rejected(self, diamond_graph):
        with pytest.raises(ValueError):
            build_transitive_closure_incremental(diamond_graph, backend="gpu")


class TestDenseSparseAgree:
    @given(edge_list_strategy())
    @settings(max_examples=40, deadline=None)
    def test_backends_agree(self, spec):
        num_nodes, edges = spec
        graph = DiGraph.from_edges(num_nodes, edges)
        dense = build_transitive_closure_incremental(graph, backend="dense")
        sparse = build_transitive_closure_incremental(graph, backend="sparse")
        for u in graph.nodes():
            for v in graph.nodes():
                assert dense.reachability(u, v) == pytest.approx(
                    sparse.reachability(u, v)
                )


class TestNaiveBuilder:
    def test_matches_incremental(self):
        graph = random_graph(12, 30, seed=9)
        naive = build_transitive_closure_naive(graph)
        incremental = build_transitive_closure_incremental(graph)
        for u in graph.nodes():
            for v in graph.nodes():
                assert naive.reachability(u, v) == pytest.approx(
                    incremental.reachability(u, v)
                )

    def test_pair_restriction(self, diamond_graph):
        closure = build_transitive_closure_naive(diamond_graph, pairs=[(0, 4)])
        assert closure.reachability(0, 4) == pytest.approx(1 / 3)
        assert closure.reachability(0, 1) == 0.0  # pair not computed


class TestClosureContainer:
    def test_reachable_from(self, diamond_graph):
        closure = build_transitive_closure_incremental(diamond_graph)
        row = closure.reachable_from(0)
        assert set(row) == {1, 2, 3, 4}
        assert row[4] == pytest.approx(1 / 3)

    def test_nonzero_entries_counts(self, chain_graph):
        closure = build_transitive_closure_incremental(chain_graph, max_hops=4)
        assert closure.nonzero_entries() == 4 + 3 + 2 + 1

    def test_size_bytes_positive(self, diamond_graph):
        for backend in ("dense", "sparse"):
            closure = build_transitive_closure_incremental(
                diamond_graph, backend=backend
            )
            assert closure.size_bytes() > 0

    def test_constructor_requires_exactly_one_storage(self):
        from repro.graph.transitive_closure import TransitiveClosure

        with pytest.raises(ValueError):
            TransitiveClosure(2, 4)


class TestExactFolloweeSet:
    def test_diamond(self, diamond_graph):
        assert exact_followee_set(diamond_graph, 0, 4) == {1, 2}

    def test_unreachable(self, diamond_graph):
        assert exact_followee_set(diamond_graph, 3, 0) == set()
