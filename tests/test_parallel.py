"""Sharded parallel batch linker: parity with sequential, lifecycle."""

import pytest

from repro.config import DAY, LinkerConfig
from repro.core.batch import LinkRequest, MicroBatchLinker
from repro.core.linker import SocialTemporalLinker
from repro.core.parallel import LinkerRecipe, ParallelBatchLinker, shard_of
from repro.graph.digraph import DiGraph
from repro.stream.tweet import MentionSpan, Tweet


@pytest.fixture
def linker(tiny_ckb):
    graph = DiGraph(13)
    graph.add_edge(0, 10)
    graph.add_edge(5, 11)
    return SocialTemporalLinker(
        tiny_ckb, graph, config=LinkerConfig(burst_threshold=2, influential_users=2)
    )


def _requests():
    return [
        LinkRequest("jordan", user=0, now=8 * DAY),
        LinkRequest("jordan", user=5, now=8 * DAY),
        LinkRequest("nba", user=0, now=8 * DAY),
        LinkRequest("jordan", user=0, now=2 * DAY),
        LinkRequest("qqqqqq", user=0, now=0.0),
    ]


def _assert_same_results(actual, expected):
    assert len(actual) == len(expected)
    for a, b in zip(actual, expected):
        assert (a.surface, a.user, a.timestamp) == (b.surface, b.user, b.timestamp)
        assert a.candidates == b.candidates
        assert a.degradation == b.degradation
        for ca, cb in zip(a.ranked, b.ranked):
            assert ca.entity_id == cb.entity_id
            assert ca.score == cb.score


class TestSharding:
    def test_shard_stable_across_calls(self):
        assert shard_of("jordan", 4) == shard_of("jordan", 4)

    def test_shard_in_range(self):
        for surface in ("jordan", "nba", "", "日本語"):
            for n in (1, 2, 3, 7):
                assert 0 <= shard_of(surface, n) < n

    def test_partition_covers_every_index_once(self, linker):
        parallel = ParallelBatchLinker(linker, workers=3)
        shards = parallel._partition(_requests())
        seen = sorted(i for indices, _ in shards for i in indices)
        assert seen == list(range(len(_requests())))

    def test_surface_affinity(self, linker):
        """All requests of one surface land in exactly one shard."""
        parallel = ParallelBatchLinker(linker, workers=3)
        shards = parallel._partition(_requests())
        owner = {}
        for shard_index, (_, requests) in enumerate(shards):
            for request in requests:
                owner.setdefault(request.surface, shard_index)
                assert owner[request.surface] == shard_index


class TestParity:
    def test_workers_1_matches_sequential(self, linker):
        with ParallelBatchLinker(linker, workers=1) as parallel:
            results = parallel.link_batch(_requests())
        expected = [linker.link(r.surface, r.user, r.now) for r in _requests()]
        _assert_same_results(results, expected)

    def test_workers_3_matches_workers_1(self, linker):
        with ParallelBatchLinker(linker, workers=1) as sequential:
            expected = sequential.link_batch(_requests())
        with ParallelBatchLinker(linker, workers=3, min_pool_batch=1) as parallel:
            results = parallel.link_batch(_requests())
        _assert_same_results(results, expected)

    def test_world_scale_parity(self, small_context):
        """On a real test stream, every worker count ranks identically."""
        linker = small_context.social_temporal()._linker
        requests = [
            LinkRequest(surface=m.surface, user=t.user, now=t.timestamp)
            for t in small_context.test_dataset.tweets[:80]
            for m in t.mentions
        ]
        expected = MicroBatchLinker(linker).link_batch(requests)
        with ParallelBatchLinker(linker, workers=2, min_pool_batch=1) as parallel:
            results = parallel.link_batch(requests)
        _assert_same_results(results, expected)

    def test_output_order_preserved(self, linker):
        with ParallelBatchLinker(linker, workers=2, min_pool_batch=1) as parallel:
            results = parallel.link_batch(_requests())
        assert [r.surface for r in results] == [r.surface for r in _requests()]
        assert [r.user for r in results] == [r.user for r in _requests()]

    def test_link_tweets_grouping(self, linker):
        tweets = [
            Tweet(
                tweet_id=1, user=0, timestamp=8 * DAY, text="jordan nba",
                mentions=(MentionSpan("jordan"), MentionSpan("nba")),
            ),
            Tweet(
                tweet_id=2, user=5, timestamp=8 * DAY, text="jordan",
                mentions=(MentionSpan("jordan"),),
            ),
            Tweet(tweet_id=3, user=6, timestamp=8 * DAY, text="hello", mentions=()),
        ]
        with ParallelBatchLinker(linker, workers=2, min_pool_batch=1) as parallel:
            grouped = parallel.link_tweets(tweets)
        assert len(grouped[1]) == 2
        assert len(grouped[2]) == 1
        assert grouped[3] == []
        assert grouped[2][0].user == 5


class TestLifecycle:
    def test_empty_batch(self, linker):
        with ParallelBatchLinker(linker, workers=2) as parallel:
            assert parallel.link_batch([]) == []

    def test_close_is_idempotent(self, linker):
        parallel = ParallelBatchLinker(linker, workers=2, min_pool_batch=1)
        parallel.link_batch(_requests())
        parallel.close()
        parallel.close()

    def test_snapshot_stale_until_refresh(self, linker, tiny_ckb):
        """Workers see the fork-time linker; refresh() re-snapshots it."""
        request = [LinkRequest("jordan", user=6, now=100 * DAY)]
        parallel = ParallelBatchLinker(linker, workers=2, min_pool_batch=1)
        try:
            before = parallel.link_batch(request)
            assert before[0].best.entity_id == 0  # popularity favours e0
            # flood e2 ("air jordan") with confirmations: the *parent*
            # linker now ranks it first on popularity
            for i in range(60):
                linker.confirm_link(2, user=12, timestamp=float(i))
            assert linker.link("jordan", user=6, now=100 * DAY).best.entity_id == 2
            stale = parallel.link_batch(request)
            _assert_same_results(stale, before)  # fork-time snapshot
            parallel.refresh()
            fresh = parallel.link_batch(request)
            assert fresh[0].best.entity_id == 2
        finally:
            parallel.close()

    def test_requires_linker_or_recipe(self):
        with pytest.raises(ValueError):
            ParallelBatchLinker()

    def test_negative_bucket_rejected(self, linker):
        with pytest.raises(ValueError):
            ParallelBatchLinker(linker, recency_bucket=-1.0)

    def test_recipe_path(self, linker):
        recipe = LinkerRecipe(factory=lambda bound=linker: bound)
        with ParallelBatchLinker(recipe=recipe, workers=1) as parallel:
            results = parallel.link_batch(_requests())
        expected = [linker.link(r.surface, r.user, r.now) for r in _requests()]
        _assert_same_results(results, expected)

    def test_recipe_build_applies_args(self):
        recipe = LinkerRecipe(
            factory=lambda *args, **kwargs: (args, kwargs),
            args=(1, 2),
            kwargs=(("name", "x"),),
        )
        assert recipe.build() == ((1, 2), {"name": "x"})
