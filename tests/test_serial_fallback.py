"""Parallel index builders fall back to serial when a pool cannot help.

PR-2 gave the transitive closure and the 2-hop cover multi-process
builds; on 1-CPU containers (``effective_workers() <= 1``) or graphs
below :data:`repro.parallelism.SERIAL_BUILD_THRESHOLD` the fork/pickle
overhead dominates, so the builders now run in-process instead — with
identical rows (the shards are exact either way) and a
``build.serial_fallback`` trace event so the decision is observable.
"""

from __future__ import annotations

import pytest

from repro import parallelism
from repro.graph.transitive_closure import (
    build_transitive_closure_incremental,
    build_transitive_closure_parallel,
)
from repro.graph.two_hop import build_two_hop_cover
from repro.obs.trace import TRACE

from conftest import random_graph


@pytest.fixture(autouse=True)
def clean_trace():
    TRACE.reset()
    TRACE.enable()
    yield
    TRACE.reset()
    TRACE.disable()


def _fallback_events():
    return [
        event
        for span in TRACE.drain()
        for event in span.events
        if event.name == "build.serial_fallback"
    ]


class TestEffectiveWorkers:
    def test_capped_by_schedulable_cpus(self):
        cap = parallelism.resolve_workers(None)
        assert parallelism.effective_workers(64) == cap
        assert parallelism.effective_workers(1) == 1

    def test_threshold_is_sane(self):
        assert parallelism.SERIAL_BUILD_THRESHOLD >= 2


class TestClosureFallback:
    def test_small_graph_falls_back_and_matches(self):
        graph = random_graph(40, 120, seed=7)
        parallel = build_transitive_closure_parallel(graph, workers=4)
        events = _fallback_events()
        assert len(events) == 1
        assert events[0].attributes["builder"] == "transitive_closure"
        assert events[0].attributes["requested_workers"] == 4
        assert events[0].attributes["nodes"] == 40
        assert events[0].attributes["algorithm"] == "incremental"
        serial = build_transitive_closure_parallel(graph, workers=1)
        incremental = build_transitive_closure_incremental(graph)
        for u in graph.nodes():
            for v in graph.nodes():
                # The fallback now *is* the incremental builder (the fastest
                # serial algorithm), bit-for-bit; the per-source BFS rows
                # agree up to the dense backend's float32 rounding.
                assert parallel.reachability(u, v) == incremental.reachability(u, v)
                assert parallel.reachability(u, v) == pytest.approx(
                    serial.reachability(u, v)
                )

    def test_explicit_serial_build_emits_no_event(self):
        graph = random_graph(20, 40, seed=3)
        build_transitive_closure_parallel(graph, workers=1)
        assert _fallback_events() == []


class TestTwoHopFallback:
    def test_small_graph_falls_back_and_matches(self):
        graph = random_graph(40, 120, seed=9)
        parallel = build_two_hop_cover(graph, workers=4)
        events = _fallback_events()
        assert len(events) == 1
        assert events[0].attributes["builder"] == "two_hop_cover"
        assert events[0].attributes["effective_workers"] >= 1
        serial = build_two_hop_cover(graph, workers=1)
        for u in graph.nodes():
            for v in graph.nodes():
                assert parallel.reachability(u, v) == serial.reachability(u, v)

    def test_explicit_serial_build_emits_no_event(self):
        graph = random_graph(20, 40, seed=5)
        build_two_hop_cover(graph, workers=1)
        assert _fallback_events() == []
