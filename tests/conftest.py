"""Shared fixtures: small deterministic worlds and hand-built graphs."""

from __future__ import annotations

import random

import pytest

from repro.config import DAY
from repro.eval.context import build_experiment
from repro.graph.digraph import DiGraph
from repro.kb.builder import KBProfile
from repro.kb.complemented import ComplementedKnowledgebase
from repro.kb.knowledgebase import Knowledgebase
from repro.stream.generator import StreamProfile, SyntheticWorld
from repro.stream.profiles import quick_profiles


@pytest.fixture
def diamond_graph() -> DiGraph:
    """u=0 follows a=1, b=2, c=3; a and b follow v=4.

    Hand-checkable weighted reachabilities:
    R(0,1)=R(0,2)=R(0,3)=1 (direct), R(0,4) = (1/2) * (2/3) = 1/3.
    """
    return DiGraph.from_edges(5, [(0, 1), (0, 2), (0, 3), (1, 4), (2, 4)])


@pytest.fixture
def chain_graph() -> DiGraph:
    """0 -> 1 -> 2 -> 3 -> 4 (single path, tests hop horizon)."""
    return DiGraph.from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)])


def random_graph(num_nodes: int, num_edges: int, seed: int) -> DiGraph:
    rng = random.Random(seed)
    graph = DiGraph(num_nodes)
    while graph.num_edges < num_edges:
        u = rng.randrange(num_nodes)
        v = rng.randrange(num_nodes)
        if u != v:
            graph.add_edge(u, v)
    return graph


@pytest.fixture
def tiny_kb() -> Knowledgebase:
    """The paper's Fig. 1 in miniature: the ambiguous mention "jordan".

    Entities: 0 = Michael Jordan (basketball), 1 = Michael Jordan (ML),
    2 = Air Jordan, 3 = Chicago Bulls, 4 = NBA, 5 = ICML, 6 = machine
    learning.  "jordan" maps to {0, 1, 2}; hyperlinks are dense inside the
    basketball cluster {0, 3, 4} and inside the ML cluster {1, 5, 6}.
    """
    kb = Knowledgebase()
    kb.add_entity(
        "michael jordan (basketball)", description="jordan nba bulls dunk".split()
    )
    kb.add_entity(
        "michael jordan (ml)", description="jordan icml inference model".split()
    )
    kb.add_entity("air jordan", description="jordan shoes sneaker brand".split())
    kb.add_entity("chicago bulls", description="bulls nba team chicago".split())
    kb.add_entity("nba", description="nba league basketball season".split())
    kb.add_entity("icml", description="icml machine learning conference".split())
    kb.add_entity("machine learning", description="machine model data learning".split())
    for entity_id in (0, 1, 2):
        kb.add_surface_form("jordan", entity_id)
    basketball = (0, 3, 4)
    ml = (1, 5, 6)
    for cluster in (basketball, ml):
        for a in cluster:
            for b in cluster:
                if a != b:
                    kb.add_hyperlink(a, b)
    return kb


@pytest.fixture
def tiny_ckb(tiny_kb) -> ComplementedKnowledgebase:
    """Complemented version of the Fig.-1 KB.

    Users: 10 = @NBAOfficial (tweets only basketball), 11 = ML expert who
    mostly tweets ML but once basketball, 12 = sneakerhead.
    """
    ckb = ComplementedKnowledgebase(tiny_kb)
    for ts in range(9):
        ckb.link_tweet(0, user=10, timestamp=float(ts) * DAY)
    ckb.link_tweet(0, user=11, timestamp=2.0 * DAY)
    for ts in range(4):
        ckb.link_tweet(1, user=11, timestamp=float(ts) * DAY)
    for ts in range(3):
        ckb.link_tweet(2, user=12, timestamp=float(ts) * DAY)
    ckb.link_tweet(4, user=10, timestamp=5.0 * DAY)
    return ckb


def small_profiles(seed: int = 5):
    """KB/stream profiles for a fast (<1 s) but non-trivial world."""
    return quick_profiles(seed)


@pytest.fixture(scope="session")
def small_world() -> SyntheticWorld:
    kb_profile, stream_profile = small_profiles()
    return SyntheticWorld.generate(
        kb_profile=kb_profile, stream_profile=stream_profile
    )


@pytest.fixture(scope="session")
def small_context(small_world):
    """Experiment context with ground-truth complementation (fast)."""
    return build_experiment(world=small_world, complement_method="truth")
