"""Replay adapters and experiment-context tests (uses the small world)."""

import pytest

from repro.eval.context import build_experiment, complement_knowledgebase
from repro.eval.metrics import mention_and_tweet_accuracy
from repro.eval.reporting import format_table


class TestAdapters:
    def test_social_temporal_run_covers_dataset(self, small_context):
        run = small_context.social_temporal().run(small_context.test_dataset)
        assert run.num_tweets == small_context.test_dataset.num_tweets
        assert set(run.predictions) == {
            t.tweet_id for t in small_context.test_dataset.tweets
        }
        assert run.total_seconds > 0.0

    def test_prediction_alignment(self, small_context):
        run = small_context.onthefly().run(small_context.test_dataset)
        for tweet in small_context.test_dataset.tweets:
            assert len(run.predictions[tweet.tweet_id]) == tweet.num_mentions

    def test_collective_adapter_batches_by_user(self, small_context):
        run = small_context.collective().run(small_context.test_dataset)
        assert set(run.predictions) == {
            t.tweet_id for t in small_context.test_dataset.tweets
        }

    def test_timing_row(self, small_context):
        run = small_context.onthefly().run(small_context.test_dataset)
        row = run.timing_row()
        assert row["method"] == "on-the-fly"
        assert row["ms/mention"] >= 0.0

    def test_online_reachability_variant(self, small_context):
        adapter = small_context.social_temporal(reachability="online")
        run = adapter.run(small_context.test_dataset)
        assert run.num_tweets == small_context.test_dataset.num_tweets

    def test_unknown_reachability_rejected(self, small_context):
        with pytest.raises(ValueError):
            small_context.social_temporal(reachability="quantum")


class TestContext:
    def test_truth_complementation_links_everything(self, small_world):
        context = build_experiment(world=small_world, complement_method="truth")
        expected = sum(
            len(t.mentions)
            for t in context.catalog.dataset(10).tweets
        )
        assert context.ckb.total_links == expected

    def test_collective_complementation_is_noisy(self, small_world):
        truth = build_experiment(world=small_world, complement_method="truth")
        noisy = complement_knowledgebase(
            small_world, truth.catalog.dataset(10), method="collective"
        )
        # same number of links (every mention has candidates modulo typos)
        # but some linked to the wrong entity
        disagreements = 0
        for entity_id in noisy.linked_entities():
            if noisy.count(entity_id) != truth.ckb.count(entity_id):
                disagreements += 1
        assert disagreements > 0

    def test_unknown_complementation_rejected(self, small_world):
        with pytest.raises(ValueError):
            build_experiment(world=small_world, complement_method="oracle")

    def test_closure_shared_and_cached(self, small_context):
        assert small_context.closure is small_context.closure

    def test_ours_beats_chance(self, small_context):
        """End-to-end sanity: with truth complementation our linker must be
        far above the ~1/ambiguity random baseline on the test set."""
        run = small_context.social_temporal().run(small_context.test_dataset)
        report = mention_and_tweet_accuracy(
            small_context.test_dataset.tweets, run.predictions
        )
        assert report.mention_accuracy > 0.55


class TestReporting:
    def test_format_table_alignment(self):
        rows = [
            {"method": "ours", "mention": 0.72, "tweet": 0.66},
            {"method": "on-the-fly", "mention": 0.6, "tweet": 0.55},
        ]
        text = format_table(rows, title="Fig 4(a)")
        lines = text.splitlines()
        assert lines[0] == "Fig 4(a)"
        assert "method" in lines[1]
        assert len(lines) == 5

    def test_format_empty(self):
        assert "(no rows)" in format_table([])

    def test_floats_rounded(self):
        text = format_table([{"x": 0.123456789}])
        assert "0.1235" in text
