"""Concurrent open-loop load client and the shared v2 report schema.

The socket half boots a real :class:`ReproHTTPServer` whose tenant
linker is wrapped to be deliberately slow, then fires a burst through
:func:`repro.serve.client.run_http` with a worker pool: because arrivals
are not gated on responses, a tiny admission class genuinely overflows
and sheds — the property the ``serve-load`` CI job gates on.  The rest
pins the shared report plumbing both load modes ride: arrival modes,
per-tenant percentiles, the invalid-body counter and the single
validator.
"""

import json
import time

import pytest

from repro.serve.admission import AdmissionClass, ClassedAdmissionController
from repro.serve.client import run_http
from repro.serve.handlers import ServeApp, validate_error_body
from repro.serve.load import (
    LoadProfile,
    OutcomeAccounting,
    PlannedRequest,
    generate_requests,
)
from repro.serve.report import (
    LOAD_SCHEMA_VERSION,
    build_load_document,
    validate_load_document,
)
from repro.serve.server import ReproHTTPServer
from repro.serve.tenants import TenantSpec, build_tenant_registry
from repro.testing.faults import FakeClock

QUERIES = [("entity", 0, 1.0), ("thing", 1, 2.0)]
PROFILE = LoadProfile(base_rate=100.0, malformed_rate=0.1)


class TestArrivalModes:
    def test_poisson_is_the_default_and_stable(self):
        kwargs = dict(seed=5, count=40, profile=PROFILE,
                      tenants=["alpha"], queries=QUERIES)
        assert generate_requests(**kwargs) == generate_requests(
            arrivals="poisson", **kwargs
        )

    def test_uniform_spacing_is_deterministic(self):
        first = generate_requests(5, 40, PROFILE, ["alpha"], QUERIES,
                                  arrivals="uniform")
        second = generate_requests(5, 40, PROFILE, ["alpha"], QUERIES,
                                   arrivals="uniform")
        assert first == second
        # gaps are exactly 1/rate(t): no sampling noise
        assert first[0].at == pytest.approx(1.0 / PROFILE.rate_at(0.0))

    def test_uniform_skips_the_gap_draw(self):
        # poisson spends one rng draw per gap; uniform spends none, so
        # the two modes produce different (but individually seeded)
        # traces of the same length and shape
        poisson = generate_requests(5, 40, PROFILE, ["alpha"], QUERIES)
        uniform = generate_requests(5, 40, PROFILE, ["alpha"], QUERIES,
                                    arrivals="uniform")
        assert len(poisson) == len(uniform) == 40
        assert [p.at for p in poisson] != [u.at for u in uniform]
        assert all(u.at > 0 for u in uniform)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="arrivals"):
            generate_requests(5, 4, PROFILE, ["alpha"], QUERIES,
                              arrivals="fibonacci")


class TestReportSchemaV2:
    def build(self, **overrides):
        outcomes = {name: 0 for name in
                    ("ok", "shed", "rate_limited", "unauthorized")}
        outcomes["ok"] = 2
        outcomes["shed"] = 1
        kwargs = dict(
            mode="http", seed=1, profile="bursty", chaos={"enabled": False},
            outcomes=outcomes, by_tenant={"alpha": {"ok": 2, "shed": 1}},
            latencies_s=[0.010, 0.020], duration_s=1.5,
            tenant_latencies_s={"alpha": [0.010, 0.020]},
            invalid_error_bodies=0, client={"pool": 4, "open_loop": True},
        )
        kwargs.update(overrides)
        return build_load_document(**kwargs)

    def test_valid_document_passes(self):
        assert validate_load_document(self.build()) == []
        assert LOAD_SCHEMA_VERSION == 2

    def test_tenant_percentiles_rendered(self):
        doc = self.build()
        alpha = doc["tenant_latency_ms"]["alpha"]
        assert set(alpha) == {"p50", "p95", "p99", "max"}
        assert alpha["max"] == pytest.approx(20.0)
        assert doc["latency_ms"]["p95"] >= doc["latency_ms"]["p50"]

    def test_client_metadata_rendered(self):
        assert self.build()["meta"]["client"] == {"pool": 4, "open_loop": True}
        # in-process runs default to the no-pool marker
        plain = self.build(client=None)
        assert plain["meta"]["client"] == {"pool": 0, "open_loop": False}

    def test_unauthorized_is_a_counted_outcome(self):
        doc = self.build()
        assert doc["outcomes"]["unauthorized"] == 0
        del doc["outcomes"]["unauthorized"]
        assert any("unauthorized" in p for p in validate_load_document(doc))

    def test_new_sections_required(self):
        for section in ("tenant_latency_ms", "invalid_error_bodies"):
            doc = self.build()
            del doc[section]
            assert any(section in p for p in validate_load_document(doc))

    def test_invalid_bodies_must_be_non_negative_int(self):
        doc = self.build()
        doc["invalid_error_bodies"] = -1
        assert validate_load_document(doc) != []
        doc["invalid_error_bodies"] = 1.5
        assert validate_load_document(doc) != []

    def test_malformed_tenant_percentiles_flagged(self):
        doc = self.build()
        doc["tenant_latency_ms"]["alpha"] = {"p50": "fast"}
        assert any("alpha" in p for p in validate_load_document(doc))


class TestValidateErrorBody:
    def test_well_formed_bodies_pass(self):
        for kind, status in (("shed", 503), ("rate_limited", 429),
                             ("unauthorized", 401)):
            body = {"schema_version": 1,
                    "error": {"type": kind, "status": status, "message": "x"}}
            if kind == "rate_limited":
                body["error"]["retry_after_s"] = 0.5
            assert validate_error_body(body) == []

    @pytest.mark.parametrize(
        "body",
        ["nope", {"schema_version": 2, "error": {}}, {"schema_version": 1},
         {"schema_version": 1, "error": {"type": "novel", "status": 500,
                                         "message": "x"}},
         {"schema_version": 1, "error": {"type": "shed", "status": "503",
                                         "message": "x"}},
         {"schema_version": 1, "error": {"type": "shed", "status": 503}},
         {"schema_version": 1, "error": {"type": "rate_limited",
                                         "status": 429, "message": "x"}}],
    )
    def test_malformed_bodies_flagged(self, body):
        assert validate_error_body(body) != []


class _SlowLinker:
    """Delegate that pins each link call to a fixed wall-clock cost, so a
    concurrent burst reliably overflows a one-slot admission class."""

    def __init__(self, inner, delay_s):
        self._inner = inner
        self._delay_s = delay_s

    def link(self, surface, user, now):
        time.sleep(self._delay_s)
        return self._inner.link(surface, user, now)

    def __getattr__(self, name):
        return getattr(self._inner, name)


class TestOpenLoopClient:
    @pytest.fixture
    def slow_server(self, small_world):
        clock = FakeClock()
        registry, _ = build_tenant_registry(
            small_world,
            [TenantSpec(name="alpha", rate=1000.0, burst=1000.0,
                        deadline_ms=None, admission_class="tiny")],
            clock=clock,
        )
        tenant = registry.get("alpha")
        tenant.linker = _SlowLinker(tenant.linker, delay_s=0.05)
        app = ServeApp(
            registry,
            admission=ClassedAdmissionController(
                [AdmissionClass(name="tiny", capacity=1, queue_limit=0)]
            ),
            clock=clock,
        )
        with ReproHTTPServer(app, port=0) as server:
            yield server

    def test_overload_sheds_with_typed_bodies(self, slow_server):
        host, port = slow_server.address
        body = json.dumps({"tenant": "alpha", "surface": "e", "user": 0,
                           "now": 1.0}).encode()
        planned = [
            PlannedRequest(at=0.0, method="POST", path="/v1/link",
                           body=body, tenant="alpha")
            for _ in range(24)
        ]
        document = run_http(
            f"http://{host}:{port}", planned, seed=3, profile=PROFILE,
            chaos_meta={"enabled": False}, pool_size=8,
        )
        assert validate_load_document(document) == []
        outcomes = document["outcomes"]
        # every arrival at t=0 with one slot and no queue: the pool makes
        # 8 requests race, so most of the burst is shed with typed 503s
        assert outcomes["shed"] > 0
        assert outcomes["shed"] + outcomes["ok"] + outcomes["degraded"] \
            + outcomes["abstained"] == 24
        assert document["unhandled"] == 0
        assert document["invalid_error_bodies"] == 0
        assert document["meta"]["client"] == {"pool": 8, "open_loop": True}
        alpha = document["tenant_latency_ms"]["alpha"]
        assert alpha["max"] >= alpha["p50"] > 0
        assert document["by_tenant"]["alpha"]["shed"] == outcomes["shed"]

    def test_pool_size_validated(self):
        with pytest.raises(ValueError, match="pool_size"):
            run_http("http://127.0.0.1:1", [], seed=1, profile=PROFILE,
                     chaos_meta={}, pool_size=0)

    def test_non_http_url_rejected(self):
        with pytest.raises(ValueError, match="http"):
            run_http("ftp://example", [], seed=1, profile=PROFILE,
                     chaos_meta={})


class TestOutcomeAccounting:
    def test_per_tenant_latency_capture(self):
        accounting = OutcomeAccounting()
        request = PlannedRequest(at=0.0, method="POST", path="/v1/link",
                                 body=b"{}", tenant="alpha")
        accounting.record(request, "ok", 0.010)
        accounting.record(request, "shed", None)
        orphan = PlannedRequest(at=0.0, method="POST", path="/x",
                                body=None, tenant=None)
        accounting.record(orphan, "not_found", None)
        assert accounting.tenant_latencies_s == {"alpha": [0.010]}
        assert accounting.by_tenant == {"alpha": {"ok": 1, "shed": 1}}
        assert accounting.outcomes["not_found"] == 1

    def test_invalid_body_counter(self):
        accounting = OutcomeAccounting()
        accounting.check_error_body({"schema_version": 1, "error": {
            "type": "shed", "status": 503, "message": "x"}})
        assert accounting.invalid_error_bodies == 0
        accounting.check_error_body({"nope": True})
        assert accounting.invalid_error_bodies == 1
