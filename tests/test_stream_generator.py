"""Synthetic tweet stream generator tests."""

import pytest

from repro.config import DAY
from repro.kb.builder import KBProfile
from repro.stream.generator import StreamProfile, SyntheticWorld

from conftest import small_profiles


class TestWorldGeneration:
    def test_chronological_order(self, small_world):
        timestamps = [t.timestamp for t in small_world.tweets]
        assert timestamps == sorted(timestamps)

    def test_sequential_tweet_ids(self, small_world):
        assert [t.tweet_id for t in small_world.tweets] == list(
            range(len(small_world.tweets))
        )

    def test_every_mention_labeled(self, small_world):
        for tweet in small_world.tweets:
            assert tweet.mentions
            for mention in tweet.mentions:
                assert mention.true_entity is not None

    def test_surface_in_text(self, small_world):
        for tweet in small_world.tweets[:200]:
            for mention in tweet.mentions:
                assert mention.surface in tweet.text

    def test_timestamps_within_horizon(self, small_world):
        horizon = small_world.stream_profile.horizon
        for tweet in small_world.tweets:
            assert 0.0 <= tweet.timestamp <= horizon

    def test_true_entity_among_surface_candidates_unless_typo(self, small_world):
        kb = small_world.kb
        resolvable = 0
        total = 0
        for tweet in small_world.tweets:
            for mention in tweet.mentions:
                total += 1
                if mention.true_entity in kb.candidates(mention.surface):
                    resolvable += 1
        # only typos (5%) break exact resolvability
        assert resolvable / total > 0.9

    def test_hubs_tweet_heavily_and_on_topic(self, small_world):
        by_user = small_world.tweets_by_user()
        profile = small_world.stream_profile
        for topic, topic_hubs in enumerate(small_world.hubs):
            for rank, hub in enumerate(topic_hubs):
                tweets = by_user.get(hub, [])
                expected = int(profile.hub_tweets * profile.hub_tweets_decay**rank)
                assert len(tweets) == expected
                on_topic = sum(
                    1
                    for t in tweets
                    for m in t.mentions
                    if small_world.synthetic_kb.topic_of(m.true_entity) == topic
                )
                total = sum(len(t.mentions) for t in tweets)
                # bursts on other topics occasionally pull even hubs
                # off-topic; dominance is what matters
                assert on_topic / total > 0.6

    def test_determinism(self):
        kb_profile, stream_profile = small_profiles(seed=21)
        first = SyntheticWorld.generate(kb_profile, stream_profile)
        second = SyntheticWorld.generate(kb_profile, stream_profile)
        assert [(t.user, t.timestamp, t.text) for t in first.tweets] == [
            (t.user, t.timestamp, t.text) for t in second.tweets
        ]
        assert sorted(first.graph.edges()) == sorted(second.graph.edges())


class TestInterestsDriveContent:
    def test_users_tweet_their_interest_topics(self, small_world):
        synthetic_kb = small_world.synthetic_kb
        import numpy as np

        hub_users = {h for row in small_world.hubs for h in row}
        matched = 0
        total = 0
        for tweet in small_world.tweets:
            if tweet.user in hub_users:
                continue
            row = small_world.interests[tweet.user]
            preferred = set(np.argsort(row)[-2:])
            for mention in tweet.mentions:
                total += 1
                if synthetic_kb.topic_of(mention.true_entity) in preferred:
                    matched += 1
        # events occasionally pull users off their preferred topics
        assert matched / total > 0.6


class TestEventsShapeStream:
    def test_burst_raises_topic_share(self, small_world):
        synthetic_kb = small_world.synthetic_kb
        timeline = small_world.timeline
        event = max(timeline.events, key=lambda e: e.duration)
        inside = [0, 0]
        outside = [0, 0]
        for tweet in small_world.tweets:
            bucket = inside if event.active_at(tweet.timestamp) else outside
            for mention in tweet.mentions:
                bucket[0] += 1
                if synthetic_kb.topic_of(mention.true_entity) == event.topic:
                    bucket[1] += 1
        share_inside = inside[1] / inside[0]
        share_outside = outside[1] / max(outside[0], 1)
        assert share_inside > share_outside


class TestProfileValidation:
    def test_bad_user_count(self):
        with pytest.raises(ValueError):
            StreamProfile(num_users=1)

    def test_bad_horizon(self):
        with pytest.raises(ValueError):
            StreamProfile(horizon=-DAY)

    def test_bad_rates(self):
        with pytest.raises(ValueError):
            StreamProfile(ambiguous_mention_rate=1.5)
        with pytest.raises(ValueError):
            StreamProfile(typo_rate=-0.1)

    def test_too_many_hubs_rejected(self):
        kb_profile = KBProfile(num_topics=8)
        profile = StreamProfile(num_users=10)
        with pytest.raises(ValueError, match="hubs"):
            SyntheticWorld.generate(kb_profile, profile)


class TestTypoModel:
    def test_substitute_preserves_length(self):
        import random as _random

        from repro.stream.generator import TweetStreamGenerator

        rng = _random.Random(1)
        for _ in range(50):
            out = TweetStreamGenerator._typo("michael jordan", rng)
            assert len(out) == len("michael jordan")
            assert " " in out  # spaces untouched

    def test_all_kinds_stay_close(self):
        import random as _random

        from repro.stream.generator import TweetStreamGenerator
        from repro.text.edit_distance import edit_distance

        rng = _random.Random(2)
        for _ in range(100):
            out = TweetStreamGenerator._typo("michael jordan", rng, kinds="all")
            assert edit_distance(out, "michael jordan") <= 2

    def test_unknown_kinds_rejected(self):
        import random as _random

        import pytest as _pytest

        from repro.stream.generator import TweetStreamGenerator

        with _pytest.raises(ValueError):
            TweetStreamGenerator._typo("abcdef", _random.Random(0), kinds="swap")

    def test_default_worlds_unchanged_by_typo_feature(self):
        """The calibrated default stream must be bit-stable."""
        from repro.stream.generator import StreamProfile, SyntheticWorld

        world = SyntheticWorld.generate(
            stream_profile=StreamProfile(seed=11, num_users=60, hub_tweets=20)
        )
        # fingerprint a few tweets; guards against accidental RNG drift
        fingerprint = [(t.user, t.text) for t in world.tweets[:3]]
        again = SyntheticWorld.generate(
            stream_profile=StreamProfile(seed=11, num_users=60, hub_tweets=20)
        )
        assert fingerprint == [(t.user, t.text) for t in again.tweets[:3]]
