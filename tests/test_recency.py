"""Entity recency (Eq. 9) and propagation network (Eq. 11) tests."""

import pytest

from repro.config import DAY
from repro.core.recency import (
    RecencyPropagationNetwork,
    propagated_recency,
    sliding_window_recency,
)
from repro.kb.complemented import ComplementedKnowledgebase
from repro.kb.knowledgebase import Knowledgebase


class TestSlidingWindow:
    def test_burst_gate(self, tiny_ckb):
        # e0 has 9 tweets on days 0..8; window 3d at day 8 covers days 5-8
        scores = sliding_window_recency(
            tiny_ckb, [0, 1, 2], now=8 * DAY, window=3 * DAY, burst_threshold=3
        )
        assert scores[0] > 0.0
        # e1's last tweet is day 3 — outside the window
        assert scores[1] == 0.0

    def test_below_threshold_is_zero(self, tiny_ckb):
        scores = sliding_window_recency(
            tiny_ckb, [0, 1, 2], now=8 * DAY, window=3 * DAY, burst_threshold=100
        )
        assert all(v == 0.0 for v in scores.values())

    def test_normalization_over_candidates(self, tiny_ckb):
        scores = sliding_window_recency(
            tiny_ckb, [0, 1, 2], now=2 * DAY, window=3 * DAY, burst_threshold=1
        )
        assert sum(scores.values()) == pytest.approx(1.0)

    def test_no_recent_tweets(self, tiny_ckb):
        scores = sliding_window_recency(
            tiny_ckb, [0, 1, 2], now=100 * DAY, window=3 * DAY, burst_threshold=1
        )
        assert scores == {0: 0.0, 1: 0.0, 2: 0.0}


def build_network(kb, threshold=0.5, lam=0.5):
    return RecencyPropagationNetwork(
        kb, relatedness_threshold=threshold, propagation_lambda=lam
    )


class TestNetworkConstruction:
    def test_co_candidates_never_connected(self, tiny_kb):
        network = build_network(tiny_kb, threshold=0.0)
        # e0 and e1 share the surface "jordan" but are also... they are in
        # different clusters anyway; check a pair with shared surface and links.
        for entity_id in (0, 1, 2):
            neighbors = {n for n, _ in network.neighbors(entity_id)}
            assert not neighbors & {0, 1, 2}

    def test_threshold_cuts_edges(self, tiny_kb):
        permissive = build_network(tiny_kb, threshold=0.0)
        strict = build_network(tiny_kb, threshold=0.99)
        assert permissive.num_edges >= strict.num_edges

    def test_transition_weights_normalized(self, tiny_kb):
        network = build_network(tiny_kb, threshold=0.1)
        for entity in tiny_kb.entities():
            neighbors = network.neighbors(entity.entity_id)
            if neighbors:
                assert sum(w for _, w in neighbors) == pytest.approx(1.0)

    def test_components_partition_connected_entities(self, tiny_kb):
        network = build_network(tiny_kb, threshold=0.1)
        seen = set()
        for entity in tiny_kb.entities():
            component = network.component(entity.entity_id)
            assert entity.entity_id in component
            seen.update(component)
        assert network.num_components >= 1

    def test_isolated_entity_singleton_component(self, tiny_kb):
        network = build_network(tiny_kb, threshold=0.99)
        # with an impossible threshold every entity is isolated
        assert network.component(0) == [0]

    def test_invalid_parameters(self, tiny_kb):
        with pytest.raises(ValueError):
            build_network(tiny_kb, threshold=2.0)
        with pytest.raises(ValueError):
            build_network(tiny_kb, lam=-1.0)


class TestPropagation:
    def test_lambda_one_keeps_initial(self, tiny_kb):
        network = build_network(tiny_kb, threshold=0.1, lam=1.0)
        initial = {3: 5.0, 4: 1.0}
        result = network.propagate(initial)
        assert result[3] == pytest.approx(5.0)
        assert result[4] == pytest.approx(1.0)

    def test_recency_flows_to_related_entity(self, tiny_kb):
        # NBA (4) bursts; Michael Jordan (basketball) (0) should inherit.
        network = build_network(tiny_kb, threshold=0.1, lam=0.5)
        assert 0 in network.component(4)  # same basketball cluster
        result = network.propagate({4: 10.0})
        assert result.get(0, 0.0) > 0.0

    def test_no_flow_across_clusters(self, tiny_kb):
        network = build_network(tiny_kb, threshold=0.1, lam=0.5)
        result = network.propagate({4: 10.0})
        # ICML (5) sits in the ML cluster — untouched by an NBA burst
        assert result.get(5, 0.0) == 0.0

    def test_untouched_components_not_computed(self, tiny_kb):
        network = build_network(tiny_kb, threshold=0.1)
        result = network.propagate({})
        assert result == {}

    def test_convergence_fixed_point(self, tiny_kb):
        network = RecencyPropagationNetwork(
            tiny_kb, relatedness_threshold=0.1, propagation_lambda=0.5,
            max_iterations=200, tolerance=1e-12,
        )
        initial = {4: 10.0, 3: 2.0}
        result = network.propagate(initial)
        # fixed point: S = λ S0 + (1-λ) P S
        for entity_id in network.component(4):
            incoming = sum(
                w * result.get(n, 0.0) for n, w in network.neighbors(entity_id)
            )
            expected = 0.5 * initial.get(entity_id, 0.0) + 0.5 * incoming
            assert result[entity_id] == pytest.approx(expected, abs=1e-6)


class TestPropagatedRecency:
    def test_burst_on_related_entity_lifts_candidate(self, tiny_kb):
        """The ICML scenario: no tweets on Michael Jordan (ML) yet, but the
        conference bursts — propagation should lift the ML candidate."""
        ckb = ComplementedKnowledgebase(tiny_kb)
        now = 10 * DAY
        for i in range(8):  # ICML (5) bursts
            ckb.link_tweet(5, user=100 + i, timestamp=now - 0.5 * DAY)
        network = build_network(tiny_kb, threshold=0.1, lam=0.5)
        with_prop = propagated_recency(
            ckb, network, [0, 1, 2], now=now, window=3 * DAY, burst_threshold=3
        )
        without = sliding_window_recency(
            ckb, [0, 1, 2], now=now, window=3 * DAY, burst_threshold=3
        )
        assert without[1] == 0.0  # no direct tweets on the ML candidate
        assert with_prop[1] > 0.0  # reinforced by ICML

    def test_normalized_over_candidates(self, tiny_ckb, tiny_kb):
        network = build_network(tiny_kb, threshold=0.1)
        scores = propagated_recency(
            tiny_ckb, network, [0, 1, 2], now=2 * DAY, window=3 * DAY, burst_threshold=1
        )
        assert sum(scores.values()) == pytest.approx(1.0)

    def test_all_silent(self, tiny_kb):
        ckb = ComplementedKnowledgebase(tiny_kb)
        network = build_network(tiny_kb, threshold=0.1)
        scores = propagated_recency(
            ckb, network, [0, 1, 2], now=0.0, window=DAY, burst_threshold=1
        )
        assert scores == {0: 0.0, 1: 0.0, 2: 0.0}
