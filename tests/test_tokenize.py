"""Tweet tokenizer tests."""

from repro.text.tokenize import Token, iter_ngrams, tokenize, tokenize_words


class TestTokenize:
    def test_simple_words_are_lowercased(self):
        assert [t.text for t in tokenize("Michael Jordan DUNKS")] == [
            "michael",
            "jordan",
            "dunks",
        ]

    def test_usernames_keep_case(self):
        tokens = tokenize("follow @NBAOfficial now")
        assert tokens[1].text == "@NBAOfficial"
        assert tokens[1].kind == "user"

    def test_hashtags_lowercased_and_tagged(self):
        tokens = tokenize("game night #NBA")
        assert tokens[-1].text == "#nba"
        assert tokens[-1].kind == "hashtag"

    def test_urls_kept_whole(self):
        tokens = tokenize("see https://t.co/Ab1 wow")
        assert tokens[1].kind == "url"
        assert tokens[1].text == "https://t.co/Ab1"

    def test_offsets_point_into_source(self):
        text = "RT @bob: Jordan!"
        for token in tokenize(text):
            if token.kind in ("word", "hashtag"):
                assert text[token.start : token.end].lower() == token.text
            else:
                assert text[token.start : token.end] == token.text

    def test_empty_text(self):
        assert tokenize("") == []

    def test_contractions_survive(self):
        assert "don't" in [t.text for t in tokenize("I don't care")]


class TestTokenizeWords:
    def test_filters_non_words(self):
        words = tokenize_words("RT @bob check https://x.y #tag word")
        assert "@bob" not in words
        assert "https://x.y" not in words
        assert "word" in words

    def test_hashtag_excluded_from_words(self):
        assert tokenize_words("#nba rules") == ["rules"]


class TestIterNgrams:
    def test_all_ngrams_up_to_max(self):
        grams = list(iter_ngrams(["a", "b", "c"], max_len=2))
        phrases = [g[2] for g in grams]
        assert phrases == ["a", "a b", "b", "b c", "c"]

    def test_positions(self):
        grams = list(iter_ngrams(["x", "y"], max_len=2))
        assert grams[1] == (0, 2, "x y")

    def test_empty_input(self):
        assert list(iter_ngrams([], max_len=3)) == []
