"""Entity popularity (Eq. 2) tests."""

import pytest

from repro.core.popularity import popularity_scores


class TestPopularity:
    def test_normalized_over_candidates(self, tiny_ckb):
        # counts: e0 = 10, e1 = 4, e2 = 3
        scores = popularity_scores(tiny_ckb, [0, 1, 2])
        assert scores[0] == pytest.approx(10 / 17)
        assert scores[1] == pytest.approx(4 / 17)
        assert scores[2] == pytest.approx(3 / 17)
        assert sum(scores.values()) == pytest.approx(1.0)

    def test_candidate_set_dependence(self, tiny_ckb):
        # dropping a candidate renormalizes the shares (Eq. 2 is per-mention)
        scores = popularity_scores(tiny_ckb, [0, 1])
        assert scores[0] == pytest.approx(10 / 14)

    def test_all_zero_counts(self, tiny_ckb):
        scores = popularity_scores(tiny_ckb, [3, 5])
        assert scores == {3: 0.0, 5: 0.0}

    def test_empty_candidates(self, tiny_ckb):
        assert popularity_scores(tiny_ckb, []) == {}

    def test_single_candidate(self, tiny_ckb):
        assert popularity_scores(tiny_ckb, [0]) == {0: 1.0}
