"""Cross-module integration tests: the full pipeline on a small world."""

import pytest

from repro.config import LinkerConfig
from repro.core.batch import MicroBatchLinker
from repro.eval.context import build_experiment, complement_knowledgebase
from repro.eval.metrics import mention_and_tweet_accuracy
from repro.graph.dynamic import DynamicTransitiveClosure
from repro.search import PersonalizedSearchEngine, TweetStore
from repro.stream.generator import SyntheticWorld
from repro.stream.profiles import quick_profiles
from repro.text.ner import GazetteerNER


class TestFullPipeline:
    def test_ours_beats_random_guessing(self, small_context):
        run = small_context.social_temporal().run(small_context.test_dataset)
        report = mention_and_tweet_accuracy(
            small_context.test_dataset.tweets, run.predictions
        )
        # candidate sets have ~3 entities; random guessing sits near 1/3
        assert report.mention_accuracy > 0.5

    def test_all_methods_complete_end_to_end(self, small_context):
        for adapter in (
            small_context.onthefly(),
            small_context.collective(),
            small_context.social_temporal(reachability="online"),
        ):
            run = adapter.run(small_context.test_dataset)
            assert run.num_tweets == small_context.test_dataset.num_tweets

    def test_runs_are_deterministic(self, small_context):
        first = small_context.social_temporal().run(small_context.test_dataset)
        second = small_context.social_temporal().run(small_context.test_dataset)
        assert first.predictions == second.predictions

    def test_collective_complementation_hurts_vs_truth(self, small_world):
        """Complementation noise must cost accuracy — the Fig. 4(b) driver."""
        truth = build_experiment(world=small_world, complement_method="truth")
        noisy = build_experiment(world=small_world, complement_method="collective")
        run_truth = truth.social_temporal().run(truth.test_dataset)
        run_noisy = noisy.social_temporal().run(noisy.test_dataset)
        acc_truth = mention_and_tweet_accuracy(
            truth.test_dataset.tweets, run_truth.predictions
        )
        acc_noisy = mention_and_tweet_accuracy(
            noisy.test_dataset.tweets, run_noisy.predictions
        )
        assert acc_truth.mention_accuracy >= acc_noisy.mention_accuracy


class TestNerOnGeneratedStream:
    def test_gazetteer_recovers_planted_mentions(self, small_world):
        """NER over the KB vocabulary finds most planted (non-typo) surfaces."""
        ner = GazetteerNER(small_world.kb.mentions())
        found = total = 0
        for tweet in small_world.tweets[:300]:
            recognized = {m.surface for m in ner.recognize(tweet.text)}
            for mention in tweet.mentions:
                total += 1
                if mention.surface in recognized:
                    found += 1
        assert found / total > 0.85  # typos (5%) and overlaps cost a little


class TestLiveGraphLinking:
    def test_linker_on_dynamic_closure_follows_graph_changes(self, small_context):
        """A linker backed by the dynamic closure reacts to follow events."""
        from repro.core.linker import SocialTemporalLinker

        from repro.graph.digraph import DiGraph

        world = small_context.world
        # work on a copy: the session-scoped world's graph must not mutate
        graph = DiGraph.from_edges(world.graph.num_nodes, world.graph.edges())
        dynamic = DynamicTransitiveClosure(graph, max_hops=4)
        linker = SocialTemporalLinker(
            small_context.ckb,
            graph,
            config=small_context.config,
            reachability=dynamic,
            propagation_network=small_context.propagation_network,
        )
        surface, members = next(
            iter(world.synthetic_kb.ambiguous_surfaces.items())
        )
        target_topic = world.synthetic_kb.topic_of(members[0])
        hub = world.hubs[target_topic][0]
        # a brand-new user with no follows: no social signal at all
        user = dynamic.add_node()
        before = linker.link(surface, user=user, now=world.timeline.horizon)
        assert all(c.interest == 0.0 for c in before.ranked)
        # the user follows the topic hub -> interest appears immediately
        dynamic.add_edge(user, hub)
        after = linker.link(surface, user=user, now=world.timeline.horizon)
        interesting = {c.entity_id: c.interest for c in after.ranked}
        assert any(value > 0.0 for value in interesting.values())

    def test_batch_linker_over_search_engine_tweets(self, small_context):
        """Batch linking + search store compose on the same world."""
        world = small_context.world
        linker = small_context.social_temporal()._linker
        batch = MicroBatchLinker(linker)
        store = TweetStore(world.tweets)
        engine = PersonalizedSearchEngine(linker, store)
        tweets = list(small_context.test_dataset.tweets[:10])
        grouped = batch.link_tweets(tweets)
        assert len(grouped) == len(tweets)
        response = engine.search(
            tweets[0].mentions[0].surface,
            user=tweets[0].user,
            now=tweets[0].timestamp,
        )
        assert response.query.has_mention


class TestWorldInvariantsAtScale:
    def test_quick_profiles_build_consistent_world(self):
        kb_profile, stream_profile = quick_profiles(seed=17)
        world = SyntheticWorld.generate(kb_profile, stream_profile)
        # users referenced by tweets exist in the graph
        assert all(0 <= t.user < world.num_users for t in world.tweets)
        # every planted entity id is a valid KB entity
        for tweet in world.tweets:
            for mention in tweet.mentions:
                world.kb.entity(mention.true_entity)

    def test_complementation_only_uses_dataset_tweets(self, small_world):
        context = build_experiment(world=small_world, complement_method="truth")
        dataset_users = context.catalog.dataset(10).users
        for entity_id in context.ckb.linked_entities():
            assert context.ckb.community(entity_id) <= set(dataset_users)
