"""Persistent pool lifecycle: crash recovery, epoch-delta refresh, dispatch.

The parity suite lives in ``tests/test_parallel.py``; this module covers
the fork-once / epoch-delta protocol itself — what ships, when the parent
falls back to a full resync, and how a dead worker is survived.
"""

import dataclasses
import os
import pickle

import pytest

from repro.config import DAY, LinkerConfig
from repro.core.batch import LinkRequest, MicroBatchLinker
from repro.core.parallel import ParallelBatchLinker
from repro.core.snapshot import (
    MutationJournal,
    SnapshotDelta,
    SnapshotEpochs,
    apply_delta,
)
from repro.errors import SnapshotSyncError, WorkerCrashError
from repro.graph.digraph import DiGraph
from repro.kb.complemented import ComplementedKnowledgebase
from repro.parallelism import PersistentWorkerPool
from repro.perf import PERF


@pytest.fixture
def linker(tiny_ckb):
    from repro.core.linker import SocialTemporalLinker

    graph = DiGraph(13)
    graph.add_edge(0, 10)
    graph.add_edge(5, 11)
    return SocialTemporalLinker(
        tiny_ckb, graph, config=LinkerConfig(burst_threshold=2, influential_users=2)
    )


def _requests():
    return [
        LinkRequest("jordan", user=0, now=8 * DAY),
        LinkRequest("jordan", user=5, now=8 * DAY),
        LinkRequest("nba", user=0, now=8 * DAY),
        LinkRequest("jordan", user=0, now=2 * DAY),
        LinkRequest("qqqqqq", user=0, now=0.0),
    ]


def _assert_same_results(actual, expected):
    assert len(actual) == len(expected)
    for a, b in zip(actual, expected):
        assert (a.surface, a.user, a.timestamp) == (b.surface, b.user, b.timestamp)
        for ca, cb in zip(a.ranked, b.ranked):
            assert ca.entity_id == cb.entity_id
            assert ca.score == cb.score


def _kill_workers(parallel):
    """Hard-kill every pool worker; the next pipe use must surface a crash."""
    for process in parallel._pool._processes:
        process.terminate()
    for process in parallel._pool._processes:
        process.join(timeout=5.0)


# Module-level so they pickle by reference into workers.
def _double(x):
    return 2 * x


def _boom(_arg):
    raise ValueError("boom")


def _exit_now(_arg):  # pragma: no cover - runs only inside a worker
    os._exit(13)


class TestPersistentWorkerPool:
    """The raw pipe protocol, independent of any linker."""

    def test_rejects_single_worker(self):
        with pytest.raises(ValueError):
            PersistentWorkerPool(pickle.dumps(None), workers=1)

    def test_map_per_worker_preserves_task_order(self):
        with PersistentWorkerPool(pickle.dumps(None), workers=2) as pool:
            assert pool.map_per_worker(_double, [(1, 10), (0, 20)]) == [20, 40]

    def test_broadcast_reaches_every_worker(self):
        with PersistentWorkerPool(pickle.dumps(None), workers=3) as pool:
            assert pool.broadcast(_double, 7) == [14, 14, 14]

    def test_worker_exception_reraised_typed_in_parent(self):
        with PersistentWorkerPool(pickle.dumps(None), workers=2) as pool:
            with pytest.raises(ValueError, match="boom"):
                pool.map_per_worker(_boom, [(0, None)])
            # the worker survives its own task failure
            assert pool.broadcast(_double, 1) == [2, 2]

    def test_dead_worker_raises_worker_crash(self):
        pool = PersistentWorkerPool(pickle.dumps(None), workers=2)
        try:
            with pytest.raises(WorkerCrashError):
                pool.broadcast(_exit_now, None)
        finally:
            pool.terminate()


class TestCrashRecovery:
    def test_crash_during_batch_restarts_pool_with_full_resync(self, linker):
        parallel = ParallelBatchLinker(linker, workers=2, min_pool_batch=1)
        try:
            before = parallel.link_batch(_requests())
            restarts = PERF.counter("pool.restarts")
            resyncs = PERF.counter("pool.resync")
            full_syncs = PERF.counter("snapshot.full_syncs")
            _kill_workers(parallel)
            after = parallel.link_batch(_requests())
            _assert_same_results(after, before)
            assert PERF.counter("pool.restarts") == restarts + 1
            assert PERF.counter("pool.resync") == resyncs + 1
            assert PERF.counter("snapshot.full_syncs") == full_syncs + 1
            assert parallel._pool.alive()
        finally:
            parallel.close()

    def test_crash_during_refresh_resyncs(self, linker):
        parallel = ParallelBatchLinker(linker, workers=2, min_pool_batch=1)
        try:
            parallel.link_batch(_requests())
            _kill_workers(parallel)
            restarts = PERF.counter("pool.restarts")
            linker.confirm_link(2, user=12, timestamp=50.0)
            parallel.refresh()
            assert PERF.counter("pool.restarts") == restarts + 1
            # the rebuilt pool carries the post-mutation world
            fresh = parallel.link_batch(_requests())
            expected = MicroBatchLinker(linker).link_batch(_requests())
            _assert_same_results(fresh, expected)
        finally:
            parallel.close()


class TestRefresh:
    def test_refresh_noop_when_epochs_unchanged(self, linker):
        parallel = ParallelBatchLinker(linker, workers=2, min_pool_batch=1)
        try:
            parallel.link_batch(_requests())
            noops = PERF.counter("snapshot.refresh.noop")
            deltas = PERF.counter("snapshot.deltas")
            parallel.refresh()
            parallel.refresh()
            assert PERF.counter("snapshot.refresh.noop") == noops + 2
            assert PERF.counter("snapshot.deltas") == deltas
        finally:
            parallel.close()

    def test_refresh_before_pool_exists_is_free(self, linker):
        parallel = ParallelBatchLinker(linker, workers=2, min_pool_batch=1)
        full_syncs = PERF.counter("snapshot.full_syncs")
        parallel.refresh()
        assert parallel._pool is None
        assert PERF.counter("snapshot.full_syncs") == full_syncs

    def test_mutations_ship_as_delta_not_resync(self, linker):
        parallel = ParallelBatchLinker(linker, workers=2, min_pool_batch=1)
        try:
            parallel.link_batch(_requests())
            deltas = PERF.counter("snapshot.deltas")
            resyncs = PERF.counter("pool.resync")
            for i in range(5):
                linker.confirm_link(2, user=12, timestamp=float(i))
            parallel.refresh()
            assert PERF.counter("snapshot.deltas") == deltas + 1
            assert PERF.counter("pool.resync") == resyncs
            results = parallel.link_batch(_requests())
            expected = MicroBatchLinker(linker).link_batch(_requests())
            _assert_same_results(results, expected)
        finally:
            parallel.close()

    def test_delta_after_prune(self, linker):
        parallel = ParallelBatchLinker(linker, workers=2, min_pool_batch=1)
        try:
            parallel.link_batch(_requests())
            deltas = PERF.counter("snapshot.deltas")
            resyncs = PERF.counter("pool.resync")
            linker.confirm_link(2, user=12, timestamp=9.5 * DAY)
            linker.ckb.prune_before(1.5 * DAY)
            linker.invalidate_influence_cache()
            parallel.refresh()
            assert PERF.counter("snapshot.deltas") == deltas + 1
            assert PERF.counter("pool.resync") == resyncs
            results = parallel.link_batch(_requests())
            expected = MicroBatchLinker(linker).link_batch(_requests())
            _assert_same_results(results, expected)
        finally:
            parallel.close()

    def test_graph_mutations_ship_as_delta(self, linker):
        parallel = ParallelBatchLinker(linker, workers=2, min_pool_batch=1)
        try:
            parallel.link_batch(_requests())
            deltas = PERF.counter("snapshot.deltas")
            linker.graph.add_edge(1, 10)
            linker.graph.remove_edge(0, 10)
            parallel.refresh()
            assert PERF.counter("snapshot.deltas") == deltas + 1
            results = parallel.link_batch(_requests())
            expected = MicroBatchLinker(linker).link_batch(_requests())
            _assert_same_results(results, expected)
        finally:
            parallel.close()

    def test_epoch_regression_forces_resync(self, linker):
        """A shipped state ahead of the live world (restored checkpoint,
        rebuilt structure) can never be walked backwards by replay."""
        parallel = ParallelBatchLinker(linker, workers=2, min_pool_batch=1)
        try:
            parallel.link_batch(_requests())
            resyncs = PERF.counter("pool.resync")
            parallel._shipped = dataclasses.replace(
                parallel._shipped, links=parallel._shipped.links + 100
            )
            linker.confirm_link(2, user=12, timestamp=1.0)
            parallel.refresh()
            assert PERF.counter("pool.resync") == resyncs + 1
            results = parallel.link_batch(_requests())
            expected = MicroBatchLinker(linker).link_batch(_requests())
            _assert_same_results(results, expected)
        finally:
            parallel.close()

    def test_oversized_delta_forces_resync(self, tiny_ckb):
        from repro.core.linker import SocialTemporalLinker

        graph = DiGraph(13)
        linker = SocialTemporalLinker(
            tiny_ckb,
            graph,
            config=LinkerConfig(
                burst_threshold=2, influential_users=2, snapshot_resync_ratio=1e-9
            ),
        )
        parallel = ParallelBatchLinker(linker, workers=2, min_pool_batch=1)
        try:
            parallel.link_batch(_requests())
            resyncs = PERF.counter("pool.resync")
            deltas = PERF.counter("snapshot.deltas")
            linker.confirm_link(2, user=12, timestamp=1.0)
            parallel.refresh()
            assert PERF.counter("pool.resync") == resyncs + 1
            assert PERF.counter("snapshot.deltas") == deltas
        finally:
            parallel.close()


class TestDispatch:
    def test_small_batch_runs_in_process(self, linker):
        parallel = ParallelBatchLinker(linker, workers=2)  # min batch = 8
        serial = PERF.counter("dispatch.serial")
        results = parallel.link_batch(_requests())  # 5 < 8
        assert parallel._pool is None
        assert PERF.counter("dispatch.serial") == serial + 1
        expected = MicroBatchLinker(linker).link_batch(_requests())
        _assert_same_results(results, expected)

    def test_large_batch_uses_pool(self, linker):
        parallel = ParallelBatchLinker(linker, workers=2, min_pool_batch=1)
        try:
            pooled = PERF.counter("dispatch.pool")
            parallel.link_batch(_requests())
            assert parallel._pool is not None
            assert PERF.counter("dispatch.pool") == pooled + 1
        finally:
            parallel.close()

    def test_config_batch_dispatch(self):
        config = LinkerConfig()
        assert config.batch_dispatch(batch_size=4, workers=2) == "serial"
        assert config.batch_dispatch(batch_size=8, workers=2) == "pool"
        assert config.batch_dispatch(batch_size=100, workers=1) == "serial"

    def test_serial_dispatch_sees_live_state(self, linker):
        """Sub-threshold batches score against the live linker, so parent
        mutations are visible without any refresh."""
        parallel = ParallelBatchLinker(linker, workers=2)
        request = [LinkRequest("jordan", user=6, now=100 * DAY)]
        assert parallel.link_batch(request)[0].best.entity_id == 0
        for i in range(60):
            linker.confirm_link(2, user=12, timestamp=float(i))
        parallel.refresh()
        assert parallel.link_batch(request)[0].best.entity_id == 2


class TestSnapshotProtocol:
    """Unit coverage of the journal / delta wire format."""

    def _epochs(self, kb=0, links=0, graph=0):
        return SnapshotEpochs(kb=kb, links=links, graph=graph)

    def test_cut_requires_matching_op_counts(self):
        journal = MutationJournal()
        journal.on_graph_op(("edge+", 1, 2))
        base = self._epochs()
        assert journal.cut(base, self._epochs(graph=1)) is not None
        # an unjournaled link-epoch bump cannot be reproduced by replay
        assert journal.cut(base, self._epochs(links=1, graph=1)) is None

    def test_cut_refuses_kb_schema_change(self):
        journal = MutationJournal()
        assert journal.cut(self._epochs(), self._epochs(kb=1)) is None

    def test_cut_refuses_regression(self):
        journal = MutationJournal()
        assert journal.cut(self._epochs(links=5), self._epochs(links=3)) is None

    def test_journal_pickles_inert(self, tiny_ckb):
        graph = DiGraph(4)
        journal = MutationJournal()
        journal.attach(tiny_ckb, graph)
        graph.add_edge(0, 1)
        assert len(journal) == 1
        clone = pickle.loads(pickle.dumps(journal))
        assert clone.recording is False
        assert len(clone) == 0
        clone.on_graph_op(("edge+", 2, 3))  # inert: must not record
        assert len(clone) == 0
        journal.detach()

    def test_duplicate_edge_not_journaled(self, tiny_ckb):
        """add_edge of an existing edge bumps no epoch and must record no
        op, or op counts and epoch arithmetic would disagree forever."""
        graph = DiGraph(4)
        graph.add_edge(0, 1)
        journal = MutationJournal()
        journal.attach(tiny_ckb, graph)
        graph.add_edge(0, 1)
        assert len(journal) == 0
        journal.detach()

    def test_apply_delta_rejects_base_mismatch(self, linker):
        delta = SnapshotDelta(
            base=self._epochs(links=999, graph=999),
            target=self._epochs(links=1000, graph=999),
            ops=(("prune", 0.0),),
        )
        with pytest.raises(SnapshotSyncError):
            apply_delta(linker, delta)

    def test_apply_delta_rejects_unknown_op(self, linker):
        base = SnapshotEpochs.of(linker)
        delta = SnapshotDelta(
            base=base,
            target=dataclasses.replace(base, links=base.links + 1),
            ops=(("teleport", 1),),
        )
        with pytest.raises(SnapshotSyncError):
            apply_delta(linker, delta)

    def test_apply_delta_converges_on_target(self, linker):
        spec_blob = pickle.dumps(linker)
        worker_linker = pickle.loads(spec_blob)
        journal = MutationJournal()
        base = SnapshotEpochs.of(linker)
        journal.attach(linker.ckb, linker.graph)
        linker.confirm_link(2, user=12, timestamp=3.0)
        linker.graph.add_edge(2, 3)
        target = SnapshotEpochs.of(linker)
        delta = journal.cut(base, target)
        assert delta is not None
        apply_delta(worker_linker, delta)
        assert SnapshotEpochs.of(worker_linker) == target
        journal.detach()

    def test_regressed_from(self):
        base = self._epochs(kb=1, links=5, graph=5)
        assert self._epochs(kb=1, links=4, graph=5).regressed_from(base)
        assert not self._epochs(kb=1, links=5, graph=6).regressed_from(base)
