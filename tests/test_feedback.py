"""Interactive feedback session (Appendix D) tests."""

import pytest

from repro.config import DAY, LinkerConfig
from repro.core.feedback import FeedbackOutcome, InteractiveLinkingSession
from repro.core.linker import SocialTemporalLinker
from repro.graph.digraph import DiGraph


@pytest.fixture
def session(tiny_ckb):
    graph = DiGraph(13)
    graph.add_edge(0, 10)
    linker = SocialTemporalLinker(
        tiny_ckb, graph, config=LinkerConfig(burst_threshold=2, influential_users=2)
    )
    return InteractiveLinkingSession(linker)


class TestPropose:
    def test_confident_link(self, session):
        round_ = session.propose("jordan", user=0, now=100 * DAY)
        assert round_.outcome is FeedbackOutcome.LINKED
        assert round_.proposals[0].entity_id == 0

    def test_unknown_surface(self, session):
        round_ = session.propose("qqqqqq", user=0, now=0.0)
        assert round_.outcome is FeedbackOutcome.UNKNOWN_SURFACE
        assert round_.proposals == []

    def test_no_interest_abstains(self, session):
        # user 6 is isolated and nothing bursts at day 100: the best score
        # is popularity-only, i.e. <= beta + gamma -> new-meaning signal.
        round_ = session.propose("jordan", user=6, now=100 * DAY)
        assert round_.outcome is FeedbackOutcome.NEEDS_NEW_MEANING

    def test_rounds_recorded(self, session):
        session.propose("jordan", user=0, now=100 * DAY)
        session.propose("nba", user=0, now=100 * DAY)
        assert len(session.rounds) == 2


class TestConfirm:
    def test_confirm_updates_kb(self, session):
        round_ = session.propose("jordan", user=0, now=100 * DAY)
        ckb = session._linker.ckb
        before = ckb.count(0)
        session.confirm(round_, entity_id=0)
        assert ckb.count(0) == before + 1
        assert round_.confirmed_entity == 0


class TestNewMeaning:
    def test_add_new_meaning_warms_up(self, session):
        round_ = session.propose("jordan", user=6, now=100 * DAY)
        assert round_.outcome is FeedbackOutcome.NEEDS_NEW_MEANING
        new_id = session.add_new_meaning(round_, title="jordan (novel startup)")
        ckb = session._linker.ckb
        # the surface now maps to the new meaning too
        assert new_id in session._linker.candidate_generator.candidates("jordan")
        # and the triggering tweet seeded its community (warm-up)
        assert ckb.count(new_id) == 1
        assert round_.confirmed_entity == new_id

    def test_new_surface_entirely(self, session):
        round_ = session.propose("brandnewthing", user=0, now=0.0)
        assert round_.outcome is FeedbackOutcome.UNKNOWN_SURFACE
        new_id = session.add_new_meaning(round_, title="brand new thing")
        result = session._linker.link("brandnewthing", user=0, now=1.0)
        assert result.best.entity_id == new_id
