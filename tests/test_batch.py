"""Micro-batch linker tests: correctness vs the per-mention path."""

import pytest

from repro.config import DAY, LinkerConfig
from repro.core.batch import LinkRequest, MicroBatchLinker
from repro.core.linker import SocialTemporalLinker
from repro.graph.digraph import DiGraph


@pytest.fixture
def linker(tiny_ckb):
    graph = DiGraph(13)
    graph.add_edge(0, 10)
    graph.add_edge(5, 11)
    return SocialTemporalLinker(
        tiny_ckb, graph, config=LinkerConfig(burst_threshold=2, influential_users=2)
    )


class TestExactness:
    def test_matches_single_linking(self, linker):
        batch = MicroBatchLinker(linker, recency_bucket=0.0)
        requests = [
            LinkRequest("jordan", user=0, now=8 * DAY),
            LinkRequest("jordan", user=5, now=8 * DAY),
            LinkRequest("nba", user=0, now=8 * DAY),
            LinkRequest("jordan", user=0, now=2 * DAY),
        ]
        batched = batch.link_batch(requests)
        for request, result in zip(requests, batched):
            single = linker.link(request.surface, request.user, request.now)
            assert result.candidates == single.candidates
            for a, b in zip(result.ranked, single.ranked):
                assert a.score == pytest.approx(b.score)

    def test_output_order_preserved(self, linker):
        batch = MicroBatchLinker(linker)
        requests = [
            LinkRequest("nba", user=0, now=0.0),
            LinkRequest("jordan", user=5, now=0.0),
        ]
        results = batch.link_batch(requests)
        assert [r.surface for r in results] == ["nba", "jordan"]
        assert [r.user for r in results] == [0, 5]

    def test_unknown_surface_empty(self, linker):
        batch = MicroBatchLinker(linker)
        results = batch.link_batch([LinkRequest("qqqqqq", user=0, now=0.0)])
        assert results[0].ranked == ()

    def test_empty_batch(self, linker):
        assert MicroBatchLinker(linker).link_batch([]) == []


class TestBucketing:
    def test_bucketed_recency_shared(self, linker):
        batch = MicroBatchLinker(linker, recency_bucket=60.0)
        near = [
            LinkRequest("jordan", user=0, now=8 * DAY + 1.0),
            LinkRequest("jordan", user=0, now=8 * DAY + 59.0),
        ]
        a, b = batch.link_batch(near)
        assert [c.score for c in a.ranked] == [c.score for c in b.ranked]

    def test_negative_bucket_rejected(self, linker):
        with pytest.raises(ValueError):
            MicroBatchLinker(linker, recency_bucket=-1.0)


class TestLinkTweets:
    def test_grouped_per_tweet(self, linker, small_world):
        batch = MicroBatchLinker(linker)
        # reuse structure only — build simple tweets against the tiny KB
        from repro.stream.tweet import MentionSpan, Tweet

        tweets = [
            Tweet(
                tweet_id=1, user=0, timestamp=8 * DAY, text="jordan nba",
                mentions=(MentionSpan("jordan"), MentionSpan("nba")),
            ),
            Tweet(
                tweet_id=2, user=5, timestamp=8 * DAY, text="jordan",
                mentions=(MentionSpan("jordan"),),
            ),
        ]
        grouped = batch.link_tweets(tweets)
        assert len(grouped[1]) == 2
        assert len(grouped[2]) == 1
        assert grouped[2][0].user == 5


class TestBatchOnWorld:
    def test_world_scale_batch_equals_sequential(self, small_context):
        """On a real test stream, batch and sequential agree mention-wise."""
        adapter = small_context.social_temporal()
        linker = adapter._linker
        batch = MicroBatchLinker(linker, recency_bucket=0.0)
        tweets = list(small_context.test_dataset.tweets[:60])
        grouped = batch.link_tweets(tweets)
        for tweet in tweets:
            sequential = [r.result for r in linker.link_tweet(tweet)]
            for single, batched in zip(sequential, grouped[tweet.tweet_id]):
                assert single.candidates == batched.candidates
                if single.best is not None:
                    assert single.best.entity_id == batched.best.entity_id


class _TogglingProvider:
    """A reachability provider whose failures can be switched on and off."""

    def __init__(self, error):
        self.failing = True
        self._error = error

    def reachability(self, source: int, target: int) -> float:
        if self.failing:
            raise self._error("injected index fault")
        return 0.5


class TestDegradation:
    """The batch path rides the same degradation ladder as link()."""

    def _linker(self, tiny_ckb, provider):
        from repro.config import LinkerConfig
        from repro.core.linker import SocialTemporalLinker
        from repro.graph.digraph import DiGraph

        graph = DiGraph(13)
        graph.add_edge(0, 10)
        return SocialTemporalLinker(
            tiny_ckb,
            graph,
            config=LinkerConfig(burst_threshold=2, influential_users=2),
            reachability=provider,
        )

    @pytest.mark.parametrize(
        "error_name, degradation",
        [
            ("IndexUnavailableError", "index_unavailable"),
            ("DeadlineExceededError", "deadline_exceeded"),
            ("CircuitOpenError", "circuit_open"),
        ],
    )
    def test_fault_degrades_to_no_interest_bound(
        self, tiny_ckb, error_name, degradation
    ):
        import repro.errors as errors

        provider = _TogglingProvider(getattr(errors, error_name))
        linker = self._linker(tiny_ckb, provider)
        batch = MicroBatchLinker(linker)
        request = LinkRequest("jordan", user=0, now=8 * DAY)
        result = batch.link_batch([request])[0]
        assert result.degraded
        assert result.degradation == degradation
        assert result.ranked  # still ranked by beta*S_r + gamma*S_p
        # parity with the sequential degraded path
        single = linker.link(request.surface, request.user, request.now)
        assert single.degradation == result.degradation
        for a, b in zip(result.ranked, single.ranked):
            assert a.entity_id == b.entity_id
            assert a.score == pytest.approx(b.score)

    def test_degraded_interest_not_cached(self, tiny_ckb):
        from repro.errors import IndexUnavailableError

        provider = _TogglingProvider(IndexUnavailableError)
        linker = self._linker(tiny_ckb, provider)
        batch = MicroBatchLinker(linker)
        request = LinkRequest("jordan", user=0, now=8 * DAY)
        assert batch.link_batch([request])[0].degraded
        provider.failing = False  # index recovers
        recovered = batch.link_batch([request])[0]
        assert not recovered.degraded
        assert recovered.degradation is None

    def test_healthy_interest_cached_within_batch(self, tiny_ckb):
        from repro.errors import IndexUnavailableError

        provider = _TogglingProvider(IndexUnavailableError)
        provider.failing = False
        linker = self._linker(tiny_ckb, provider)
        batch = MicroBatchLinker(linker)
        request = LinkRequest("jordan", user=0, now=8 * DAY)
        first, second = batch.link_batch([request, request])
        assert not first.degraded and not second.degraded
        assert [c.score for c in first.ranked] == [c.score for c in second.ranked]

    def test_fault_isolated_per_request_pair(self, tiny_ckb):
        """A faulting user-interest lookup degrades only its own requests."""
        from repro.errors import IndexUnavailableError

        class _UserSelectiveProvider:
            def reachability(self, source: int, target: int) -> float:
                if source == 0:
                    raise IndexUnavailableError("user 0's shard is down")
                return 0.5

        linker = self._linker(tiny_ckb, _UserSelectiveProvider())
        batch = MicroBatchLinker(linker)
        broken, healthy = batch.link_batch(
            [
                LinkRequest("jordan", user=0, now=8 * DAY),
                LinkRequest("jordan", user=5, now=8 * DAY),
            ]
        )
        assert broken.degradation == "index_unavailable"
        assert healthy.degradation is None
