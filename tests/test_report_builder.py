"""Consolidated report builder tests."""

import pathlib

import pytest

from repro.eval.report_builder import (
    SECTIONS,
    build_report,
    collect_results,
    write_report,
)


@pytest.fixture
def results_dir(tmp_path):
    directory = tmp_path / "results"
    directory.mkdir()
    (directory / "fig4a_accuracy.txt").write_text("Fig 4(a) table\nrow\n")
    (directory / "table4_features.txt").write_text("Table 4 table\n")
    (directory / "custom_extra.txt").write_text("extra table\n")
    return directory


class TestCollect:
    def test_reads_all_tables(self, results_dir):
        results = collect_results(results_dir)
        assert set(results) == {"fig4a_accuracy", "table4_features", "custom_extra"}
        assert results["fig4a_accuracy"].startswith("Fig 4(a)")

    def test_missing_directory_is_empty(self, tmp_path):
        assert collect_results(tmp_path / "nope") == {}


class TestBuildReport:
    def test_sections_in_paper_order(self, results_dir):
        report = build_report(results_dir, generated_at="2026-07-04T00:00:00")
        fig4a = report.index("Fig. 4(a)")
        table4 = report.index("Table 4 — feature ablation")
        assert fig4a < table4
        assert "2026-07-04" in report

    def test_unknown_stems_appended(self, results_dir):
        report = build_report(results_dir, generated_at="x")
        assert "## custom_extra" in report
        assert "extra table" in report

    def test_missing_experiments_listed(self, results_dir):
        report = build_report(results_dir, generated_at="x")
        assert "Missing experiments" in report
        assert "`fig5a_latency`" in report

    def test_complete_run_has_no_missing_section(self, tmp_path):
        directory = tmp_path / "full"
        directory.mkdir()
        for stem, _ in SECTIONS:
            (directory / f"{stem}.txt").write_text(f"{stem} data\n")
        report = build_report(directory, generated_at="x")
        assert "Missing experiments" not in report


class TestWriteReport:
    def test_writes_file(self, results_dir, tmp_path):
        out = tmp_path / "REPORT.md"
        path = write_report(results_dir, out, generated_at="x")
        assert path == pathlib.Path(out)
        assert out.read_text().startswith("# Reproduction report")


class TestCliReport:
    def test_cli_builds_report(self, results_dir, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "R.md"
        code = main(["report", "--results", str(results_dir), "--out", str(out)])
        assert code == 0
        assert out.exists()
        assert "report written" in capsys.readouterr().out

    def test_cli_fails_without_results(self, tmp_path, caplog):
        from repro.cli import main

        code = main(["report", "--results", str(tmp_path / "none")])
        assert code == 1
        assert "no result tables" in caplog.text
