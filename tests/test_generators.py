"""Social graph generator tests."""

import random

import numpy as np
import pytest

from repro.graph.generators import (
    SocialGraphConfig,
    random_digraph,
    topical_social_graph,
)


def make_interests(num_users, num_topics, seed=0):
    rng = np.random.default_rng(seed)
    interests = rng.random((num_users, num_topics))
    return interests / interests.sum(axis=1, keepdims=True)


class TestRandomDigraph:
    def test_exact_edge_count(self):
        graph = random_digraph(20, 50, random.Random(1))
        assert graph.num_edges == 50
        assert graph.num_nodes == 20

    def test_too_many_edges_rejected(self):
        with pytest.raises(ValueError):
            random_digraph(3, 100)

    def test_deterministic_with_seed(self):
        a = random_digraph(15, 40, random.Random(7))
        b = random_digraph(15, 40, random.Random(7))
        assert sorted(a.edges()) == sorted(b.edges())


class TestTopicalSocialGraph:
    def test_hub_lists_must_match_topics(self):
        interests = make_interests(10, 3)
        with pytest.raises(ValueError):
            topical_social_graph(interests, hubs=[[0]], rng=random.Random(0))

    def test_hubs_attract_followers(self):
        num_users, num_topics = 150, 3
        interests = np.zeros((num_users, num_topics))
        hubs = [[0], [1], [2]]
        for user in range(num_users):
            interests[user, user % num_topics] = 1.0
        for topic, topic_hubs in enumerate(hubs):
            for hub in topic_hubs:
                interests[hub] = 0.0
                interests[hub, topic] = 1.0
        config = SocialGraphConfig(isolation_rate=0.0)
        graph = topical_social_graph(interests, hubs, config, random.Random(2))
        hub_in = sum(graph.in_degree(h) for row in hubs for h in row) / 3
        non_hub_in = sum(
            graph.in_degree(u) for u in range(3, num_users)
        ) / (num_users - 3)
        assert hub_in > 3 * non_hub_in

    def test_isolation_rate_produces_quiet_users(self):
        interests = make_interests(200, 4, seed=3)
        hubs = [[0], [1], [2], [3]]
        config = SocialGraphConfig(isolation_rate=0.5)
        graph = topical_social_graph(interests, hubs, config, random.Random(5))
        quiet = sum(1 for u in range(4, 200) if graph.out_degree(u) <= 2)
        assert quiet > 50  # roughly half the non-hub population

    def test_determinism(self):
        interests = make_interests(60, 3, seed=1)
        hubs = [[0], [1], [2]]
        a = topical_social_graph(interests, hubs, rng=random.Random(9))
        b = topical_social_graph(interests, hubs, rng=random.Random(9))
        assert sorted(a.edges()) == sorted(b.edges())

    def test_homophily(self):
        """Users follow same-dominant-topic peers more than cross-topic ones."""
        num_users, num_topics = 240, 4
        interests = np.full((num_users, num_topics), 0.02)
        dominant = [u % num_topics for u in range(num_users)]
        for user, topic in enumerate(dominant):
            interests[user, topic] = 1.0
        interests = interests / interests.sum(axis=1, keepdims=True)
        hubs = [[t] for t in range(num_topics)]
        config = SocialGraphConfig(isolation_rate=0.0, random_per_user=0.0)
        graph = topical_social_graph(interests, hubs, config, random.Random(4))
        same = cross = 0
        for u, v in graph.edges():
            if u < num_topics or v < num_topics:
                continue  # skip hub edges
            if dominant[u] == dominant[v]:
                same += 1
            else:
                cross += 1
        assert same > cross
