"""Parameter sweep utility tests."""

import pytest

from repro.config import LinkerConfig
from repro.eval.sweeps import SweepResult, sweep_configs, weight_grid


class TestWeightGrid:
    def test_triplets_sum_to_one(self):
        for alpha, beta, gamma in weight_grid((0.1, 0.6), (0.0, 0.5, 1.0)):
            assert alpha + beta + gamma == pytest.approx(1.0)
            LinkerConfig(alpha=alpha, beta=beta, gamma=gamma)  # validates

    def test_beta_fraction_semantics(self):
        triplets = weight_grid((0.6,), (0.0, 1.0))
        assert triplets[0] == (0.6, 0.0, pytest.approx(0.4))
        assert triplets[1] == (0.6, pytest.approx(0.4), 0.0)

    def test_grid_size(self):
        assert len(weight_grid((0.1, 0.3, 0.6), (0.0, 0.5))) == 6


class TestSweepResult:
    @pytest.fixture
    def result(self):
        points = [
            {"a": 1, "b": 10, "mention_accuracy": 0.5},
            {"a": 1, "b": 20, "mention_accuracy": 0.7},
            {"a": 2, "b": 10, "mention_accuracy": 0.6},
            {"a": 2, "b": 20, "mention_accuracy": 0.4},
        ]
        return SweepResult(parameters=("a", "b"), points=points)

    def test_best(self, result):
        best = result.best()
        assert (best["a"], best["b"]) == (1, 20)

    def test_value_range(self, result):
        assert result.value_range() == pytest.approx(0.3)

    def test_grid_rows_pivot(self, result):
        rows = result.grid_rows("a", "b")
        assert rows[0] == {"a": 1, "b=10": 0.5, "b=20": 0.7}
        assert rows[1]["b=10"] == 0.6

    def test_empty_sweep_rejected(self):
        with pytest.raises(ValueError):
            SweepResult(parameters=(), points=[]).best()


class TestSweepConfigs:
    def test_runs_grid_over_context(self, small_context):
        result = sweep_configs(
            small_context,
            {"burst_threshold": [1, 5], "influential_users": [1, 3]},
        )
        assert len(result.points) == 4
        for point in result.points:
            assert 0.0 <= point["mention_accuracy"] <= 1.0
            assert point["ms_per_tweet"] > 0.0
            assert point["burst_threshold"] in (1, 5)

    def test_single_parameter(self, small_context):
        result = sweep_configs(small_context, {"influential_users": [2]})
        assert len(result.points) == 1
        assert result.parameters == ("influential_users",)
