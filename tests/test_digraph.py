"""DiGraph container tests."""

import pytest

from repro.graph.digraph import DiGraph


class TestConstruction:
    def test_empty_graph(self):
        graph = DiGraph(3)
        assert graph.num_nodes == 3
        assert graph.num_edges == 0

    def test_add_edge(self):
        graph = DiGraph(2)
        assert graph.add_edge(0, 1)
        assert graph.has_edge(0, 1)
        assert not graph.has_edge(1, 0)

    def test_duplicate_edge_ignored(self):
        graph = DiGraph(2)
        graph.add_edge(0, 1)
        assert not graph.add_edge(0, 1)
        assert graph.num_edges == 1

    def test_self_loop_rejected(self):
        graph = DiGraph(2)
        with pytest.raises(ValueError):
            graph.add_edge(1, 1)

    def test_out_of_range_rejected(self):
        graph = DiGraph(2)
        with pytest.raises(IndexError):
            graph.add_edge(0, 5)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            DiGraph(-1)

    def test_from_edges(self):
        graph = DiGraph.from_edges(3, [(0, 1), (1, 2)])
        assert graph.num_edges == 2

    def test_add_node(self):
        graph = DiGraph(1)
        new = graph.add_node()
        assert new == 1
        graph.add_edge(0, 1)
        assert graph.has_edge(0, 1)


class TestAdjacency:
    def test_followee_and_follower_views(self):
        graph = DiGraph.from_edges(3, [(0, 1), (2, 1)])
        assert list(graph.out_neighbors(0)) == [1]
        assert sorted(graph.in_neighbors(1)) == [0, 2]

    def test_degrees(self):
        graph = DiGraph.from_edges(3, [(0, 1), (0, 2), (1, 0)])
        assert graph.out_degree(0) == 2
        assert graph.in_degree(0) == 1
        assert graph.degree(0) == 3

    def test_edges_iteration(self):
        edges = [(0, 1), (1, 2), (2, 0)]
        graph = DiGraph.from_edges(3, edges)
        assert sorted(graph.edges()) == sorted(edges)

    def test_len_is_node_count(self):
        assert len(DiGraph(7)) == 7


class TestDerived:
    def test_stats(self):
        graph = DiGraph.from_edges(3, [(0, 1), (0, 2)])
        stats = graph.stats()
        assert stats["nodes"] == 3
        assert stats["edges"] == 2
        assert stats["max_degree"] == 2
        assert stats["avg_degree"] == pytest.approx(4 / 3)

    def test_reverse(self):
        graph = DiGraph.from_edges(2, [(0, 1)])
        reversed_graph = graph.reverse()
        assert reversed_graph.has_edge(1, 0)
        assert not reversed_graph.has_edge(0, 1)
