"""Burst event timeline tests."""

import random

import pytest

from repro.config import DAY
from repro.stream.events import Event, EventTimeline


class TestEvent:
    def test_active_window_half_open(self):
        event = Event(topic=0, start=DAY, end=2 * DAY)
        assert not event.active_at(0.5 * DAY)
        assert event.active_at(DAY)
        assert event.active_at(1.5 * DAY)
        assert not event.active_at(2 * DAY)

    def test_duration(self):
        assert Event(topic=0, start=0.0, end=3 * DAY).duration == 3 * DAY


class TestTimeline:
    def test_events_outside_horizon_rejected(self):
        with pytest.raises(ValueError):
            EventTimeline([Event(topic=0, start=0.0, end=10 * DAY)], horizon=5 * DAY)

    def test_bad_horizon_rejected(self):
        with pytest.raises(ValueError):
            EventTimeline([], horizon=0.0)

    def test_topic_boost_neutral_without_events(self):
        timeline = EventTimeline([], horizon=10 * DAY)
        assert timeline.topic_boost(0, 5 * DAY) == 1.0

    def test_topic_boost_during_event(self):
        timeline = EventTimeline(
            [Event(topic=1, start=0.0, end=DAY, intensity=5.0)], horizon=10 * DAY
        )
        assert timeline.topic_boost(1, 0.5 * DAY) == 5.0
        assert timeline.topic_boost(0, 0.5 * DAY) == 1.0  # other topic unaffected
        assert timeline.topic_boost(1, 2 * DAY) == 1.0  # after the event

    def test_overlapping_events_multiply(self):
        timeline = EventTimeline(
            [
                Event(topic=0, start=0.0, end=2 * DAY, intensity=2.0),
                Event(topic=0, start=DAY, end=3 * DAY, intensity=3.0),
            ],
            horizon=5 * DAY,
        )
        assert timeline.topic_boost(0, 1.5 * DAY) == 6.0

    def test_active_events(self):
        events = [
            Event(topic=0, start=0.0, end=DAY),
            Event(topic=1, start=0.5 * DAY, end=2 * DAY),
        ]
        timeline = EventTimeline(events, horizon=3 * DAY)
        active = timeline.active_events(0.75 * DAY)
        assert {e.topic for e in active} == {0, 1}

    def test_events_sorted_by_start(self):
        events = [
            Event(topic=0, start=2 * DAY, end=3 * DAY),
            Event(topic=1, start=0.0, end=DAY),
        ]
        timeline = EventTimeline(events, horizon=5 * DAY)
        assert [e.topic for e in timeline.events] == [1, 0]


class TestRandomTimeline:
    def test_counts_and_bounds(self):
        timeline = EventTimeline.random(
            num_topics=4, horizon=30 * DAY, events_per_topic=2, rng=random.Random(1)
        )
        assert len(timeline.events) == 8
        for event in timeline.events:
            assert 0 <= event.start < event.end <= 30 * DAY

    def test_deterministic(self):
        a = EventTimeline.random(3, 10 * DAY, rng=random.Random(5))
        b = EventTimeline.random(3, 10 * DAY, rng=random.Random(5))
        assert [(e.topic, e.start, e.end) for e in a.events] == [
            (e.topic, e.start, e.end) for e in b.events
        ]
