"""Link explanation tests."""

import pytest

from repro.config import DAY, LinkerConfig
from repro.core.explain import explain_link
from repro.core.linker import SocialTemporalLinker
from repro.graph.digraph import DiGraph


@pytest.fixture
def linker(tiny_ckb):
    graph = DiGraph(13)
    graph.add_edge(0, 10)  # Alice follows @NBAOfficial
    return SocialTemporalLinker(
        tiny_ckb, graph, config=LinkerConfig(burst_threshold=2, influential_users=2)
    )


class TestExplainLink:
    def test_winner_evidence(self, linker):
        result = linker.link("jordan", user=0, now=8 * DAY)
        explanation = explain_link(linker, result)
        winner = explanation.winner
        assert winner.entity_id == 0
        assert winner.title == "michael jordan (basketball)"
        # @NBAOfficial (user 10) is the influential evidence, followed directly
        top_evidence = winner.interest_evidence[0]
        assert top_evidence.user == 10
        assert top_evidence.reachability == 1.0
        assert "directly follows user 10" in top_evidence.describe()

    def test_counts_match_ckb(self, linker, tiny_ckb):
        result = linker.link("jordan", user=0, now=8 * DAY)
        explanation = explain_link(linker, result)
        winner = explanation.winner
        assert winner.total_tweets == tiny_ckb.count(0)
        assert winner.recent_tweets == tiny_ckb.recent_count(0, 8 * DAY, 3 * DAY)

    def test_top_candidates_limit(self, linker):
        result = linker.link("jordan", user=0, now=8 * DAY)
        explanation = explain_link(linker, result, top_candidates=2)
        assert len(explanation.candidates) == 2

    def test_render_readable(self, linker):
        result = linker.link("jordan", user=0, now=8 * DAY)
        text = explain_link(linker, result).render()
        assert "'jordan' for user 0:" in text
        assert "michael jordan (basketball)" in text
        assert "recent tweets in the window" in text

    def test_no_candidates(self, linker):
        result = linker.link("qqqqqq", user=0, now=0.0)
        explanation = explain_link(linker, result)
        assert explanation.winner is None
        assert "no candidates" in explanation.render()

    def test_unreachable_evidence_described(self, linker):
        # user 6 follows nobody: evidence lines say "no path"
        result = linker.link("jordan", user=6, now=8 * DAY)
        explanation = explain_link(linker, result)
        descriptions = " ".join(
            e.describe() for c in explanation.candidates for e in c.interest_evidence
        )
        assert "no path" in descriptions


class TestConnectivityMetric:
    def test_buckets_partition_users(self, small_context):
        from repro.eval.metrics import accuracy_by_connectivity

        run = small_context.social_temporal().run(small_context.test_dataset)
        buckets = accuracy_by_connectivity(
            small_context.test_dataset.tweets,
            run.predictions,
            small_context.world.graph,
        )
        total = sum(report.num_tweets for report in buckets.values())
        assert total == sum(
            1
            for t in small_context.test_dataset.tweets
            if t.labeled_mentions()
        )

    def test_connected_users_gain_from_social_context(self, small_context):
        from repro.eval.metrics import accuracy_by_connectivity

        run = small_context.social_temporal().run(small_context.test_dataset)
        buckets = accuracy_by_connectivity(
            small_context.test_dataset.tweets,
            run.predictions,
            small_context.world.graph,
            thresholds=(0, 3),
        )
        isolated = buckets.get("followees 0-2")
        connected = buckets.get("followees 3+")
        if isolated and connected and isolated.num_mentions > 30:
            assert connected.mention_accuracy > isolated.mention_accuracy
