"""Scale-aware index dispatch: same decisions, observable choice.

``LinkerConfig.select_index_backend`` moves where Eq. 4 is answered
(closure below the node threshold, compact 2-hop cover above), never
*what* the linker decides — these tests pin link-decision parity across
backends at and around the threshold, assert the ``index.selected``
trace breadcrumb, and cover the parallel snapshot path with a compact
provider.
"""

from __future__ import annotations

import dataclasses
import pickle

import pytest

from repro.config import DEFAULT_CONFIG, LinkerConfig
from repro.core.linker import SocialTemporalLinker
from repro.core.parallel import ParallelBatchLinker
from repro.graph.compact_labels import CompactTwoHopCover
from repro.graph.dispatch import build_reachability_index
from repro.graph.transitive_closure import TransitiveClosure
from repro.graph.two_hop import TwoHopCover
from repro.obs.trace import TRACE

from conftest import random_graph


@pytest.fixture(autouse=True)
def clean_trace():
    TRACE.reset()
    TRACE.enable()
    yield
    TRACE.reset()
    TRACE.disable()


def _selection_events():
    return [
        event
        for span in TRACE.drain()
        for event in span.events
        if event.name == "index.selected"
    ]


class TestConfigValidation:
    def test_defaults(self):
        assert DEFAULT_CONFIG.index_backend == "auto"
        assert DEFAULT_CONFIG.closure_max_nodes == 2000
        assert DEFAULT_CONFIG.index_memory_budget_bytes is None

    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError):
            LinkerConfig(index_backend="quantum")

    def test_rejects_negative_threshold(self):
        with pytest.raises(ValueError):
            LinkerConfig(closure_max_nodes=-1)

    def test_rejects_non_positive_budget(self):
        with pytest.raises(ValueError):
            LinkerConfig(index_memory_budget_bytes=0)


class TestSelection:
    def test_auto_at_and_around_threshold(self):
        config = LinkerConfig(closure_max_nodes=100)
        assert config.select_index_backend(99) == "closure"
        assert config.select_index_backend(100) == "closure"
        assert config.select_index_backend(101) == "compact"

    @pytest.mark.parametrize("backend", ["closure", "two-hop", "compact"])
    def test_forced_backend_short_circuits(self, backend):
        config = LinkerConfig(index_backend=backend, closure_max_nodes=100)
        assert config.select_index_backend(2) == backend
        assert config.select_index_backend(10_000) == backend


class TestDispatchBuild:
    def test_builds_closure_below_threshold(self):
        graph = random_graph(30, 120, seed=1)
        index = build_reachability_index(graph, LinkerConfig(closure_max_nodes=100))
        assert isinstance(index, TransitiveClosure)

    def test_builds_compact_above_threshold(self):
        graph = random_graph(30, 120, seed=1)
        index = build_reachability_index(graph, LinkerConfig(closure_max_nodes=10))
        assert isinstance(index, CompactTwoHopCover)

    def test_forced_two_hop(self):
        graph = random_graph(30, 120, seed=1)
        index = build_reachability_index(graph, LinkerConfig(index_backend="two-hop"))
        assert isinstance(index, TwoHopCover)

    def test_selection_is_traced(self):
        graph = random_graph(30, 120, seed=1)
        config = LinkerConfig(closure_max_nodes=10, index_memory_budget_bytes=2**20)
        with TRACE.span("test.dispatch"):
            build_reachability_index(graph, config)
        events = _selection_events()
        assert len(events) == 1
        attrs = events[0].attributes
        assert attrs["backend"] == "compact"
        assert attrs["requested"] == "auto"
        assert attrs["nodes"] == 30
        assert attrs["edges"] == graph.num_edges
        assert attrs["closure_max_nodes"] == 10
        assert attrs["memory_budget_bytes"] == 2**20

    def test_budget_reaches_compact_build(self):
        graph = random_graph(30, 120, seed=1)
        config = LinkerConfig(closure_max_nodes=10, index_memory_budget_bytes=2**20)
        index = build_reachability_index(graph, config)
        assert index.memory_budget_bytes == 2**20


class TestDecisionParity:
    """Same world, both backends, identical link decisions."""

    def _requests(self, context, cap=120):
        return [
            (m.surface, t.user, t.timestamp)
            for t in context.test_dataset.tweets
            for m in t.mentions
        ][:cap]

    def _decisions(self, context, provider):
        """Link decisions: ranked entity ids + degradation (scores are
        compared approximately — the dense closure stores R in float32
        while the compact cover computes float64-exact values, so ~1e-8
        score drift is expected and must never reorder a ranking)."""
        linker = SocialTemporalLinker(
            context.ckb,
            context.world.graph,
            config=context.config,
            reachability=provider,
            propagation_network=context.propagation_network,
        )
        return [
            linker.link(surface, user, now)
            for surface, user, now in self._requests(context)
        ]

    def test_closure_and_compact_link_identically(self, small_context):
        nodes = small_context.world.graph.num_nodes
        below = dataclasses.replace(
            small_context.config, closure_max_nodes=nodes
        )
        above = dataclasses.replace(
            small_context.config, closure_max_nodes=nodes - 1
        )
        closure = build_reachability_index(small_context.world.graph, below)
        compact = build_reachability_index(small_context.world.graph, above)
        assert isinstance(closure, TransitiveClosure)
        assert isinstance(compact, CompactTwoHopCover)
        via_closure = self._decisions(small_context, closure)
        via_compact = self._decisions(small_context, compact)
        assert len(via_closure) == len(via_compact) > 0
        for a, b in zip(via_closure, via_compact):
            assert [c.entity_id for c in a.ranked] == [
                c.entity_id for c in b.ranked
            ]
            assert a.degradation == b.degradation
            for ca, cb in zip(a.ranked, b.ranked):
                assert ca.score == pytest.approx(cb.score, abs=1e-6)

    def test_context_auto_provider_matches_default(self, small_context):
        auto = small_context.social_temporal(reachability="auto")
        default = small_context.social_temporal()
        for surface, user, now in self._requests(small_context, cap=60):
            a = auto._linker.link(surface, user, now)
            b = default._linker.link(surface, user, now)
            assert a.ranked == b.ranked
            assert a.degradation == b.degradation

    def test_with_scale_aware_index_classmethod(self, small_context):
        config = dataclasses.replace(small_context.config, closure_max_nodes=1)
        linker = SocialTemporalLinker.with_scale_aware_index(
            small_context.ckb, small_context.world.graph, config=config
        )
        assert isinstance(linker.reachability_provider, CompactTwoHopCover)
        surface, user, now = self._requests(small_context, cap=1)[0]
        oracle = small_context.social_temporal()._linker.link(surface, user, now)
        linked = linker.link(surface, user, now)
        assert [c.entity_id for c in linked.ranked] == [
            c.entity_id for c in oracle.ranked
        ]

    def test_snapshot_path_with_compact_provider(self, small_context):
        """The compact index survives pickling into pool workers."""
        config = dataclasses.replace(small_context.config, closure_max_nodes=1)
        linker = SocialTemporalLinker.with_scale_aware_index(
            small_context.ckb, small_context.world.graph, config=config
        )
        blob = pickle.dumps(linker.reachability_provider)
        assert isinstance(pickle.loads(blob), CompactTwoHopCover)
        from repro.core.batch import LinkRequest

        requests = [
            LinkRequest(surface=s, user=u, now=n)
            for s, u, n in self._requests(small_context, cap=40)
        ]
        serial = [linker.link(r.surface, r.user, r.now) for r in requests]
        with ParallelBatchLinker(linker, workers=2, min_pool_batch=1) as pool:
            parallel = pool.link_batch(requests)
        assert [r.ranked for r in parallel] == [r.ranked for r in serial]
