"""Property-based checks: span-tree well-formedness and histogram
conservation under seeded random operation sequences.

These guard the *invariants* the golden suite relies on — any operation
sequence must yield a tree the validator accepts, and no observation may
ever leak out of a histogram's buckets — without pinning any particular
trace shape.
"""

import random

import pytest

from repro.obs.export import render_trace_document, validate_trace_document
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.trace import Tracer


def random_trace_workload(tracer: Tracer, rng: random.Random, steps: int) -> None:
    """Drive the tracer through a random open/close/event sequence."""
    open_spans = []
    for _ in range(steps):
        action = rng.random()
        if action < 0.45 and len(open_spans) < 6:
            open_spans.append(tracer.span(f"span{rng.randrange(4)}"))
        elif action < 0.75 and open_spans:
            open_spans.pop().__exit__(None, None, None)
        elif action < 0.9:
            tracer.event(f"event{rng.randrange(3)}", value=rng.randrange(10))
        elif open_spans:
            open_spans[-1].set_attribute(f"k{rng.randrange(3)}", rng.random())
    while open_spans:
        open_spans.pop().__exit__(None, None, None)


class TestSpanTreeProperties:
    @pytest.mark.parametrize("seed", range(20))
    def test_random_workloads_yield_wellformed_trees(self, seed):
        rng = random.Random(seed)
        tracer = Tracer()
        tracer.enable()
        random_trace_workload(tracer, rng, steps=rng.randrange(5, 80))
        assert tracer.open_spans == 0
        document = render_trace_document(tracer.drain())
        assert validate_trace_document(document) == []

    @pytest.mark.parametrize("seed", range(10))
    def test_single_root_per_trace_under_random_nesting(self, seed):
        rng = random.Random(1000 + seed)
        tracer = Tracer()
        tracer.enable()
        random_trace_workload(tracer, rng, steps=60)
        spans = tracer.drain()
        roots_by_trace = {}
        for span in spans:
            if span.parent_id is None:
                roots_by_trace[span.trace_id] = (
                    roots_by_trace.get(span.trace_id, 0) + 1
                )
        assert set(roots_by_trace) == {s.trace_id for s in spans}
        assert all(count == 1 for count in roots_by_trace.values())

    @pytest.mark.parametrize("seed", range(10))
    def test_child_intervals_nest_under_random_workloads(self, seed):
        rng = random.Random(2000 + seed)
        tracer = Tracer()
        tracer.enable()
        random_trace_workload(tracer, rng, steps=60)
        spans = {span.span_id: span for span in tracer.drain()}
        for span in spans.values():
            if span.parent_id is not None:
                parent = spans[span.parent_id]
                assert parent.start <= span.start <= span.end <= parent.end


class TestHistogramProperties:
    @pytest.mark.parametrize("seed", range(20))
    def test_bucket_counts_always_sum_to_count(self, seed):
        rng = random.Random(seed)
        boundaries = sorted(
            {round(rng.uniform(-50.0, 50.0), 3) for _ in range(rng.randrange(1, 12))}
        )
        histogram = Histogram(boundaries)
        observations = rng.randrange(0, 300)
        for _ in range(observations):
            histogram.observe(rng.uniform(-100.0, 100.0))
        assert sum(histogram.bucket_counts) == histogram.count == observations

    @pytest.mark.parametrize("seed", range(10))
    def test_sharded_observation_merges_to_sequential(self, seed):
        """Splitting one value stream across registries and merging equals
        observing the whole stream in one registry — the exact property
        the ParallelBatchLinker metrics merge rests on."""
        rng = random.Random(3000 + seed)
        boundaries = (0.25, 0.5, 0.75, 1.0)
        values = [rng.random() for _ in range(rng.randrange(1, 120))]
        sequential = MetricsRegistry()
        shards = [MetricsRegistry() for _ in range(4)]
        for value in values:
            sequential.observe("v", value, boundaries=boundaries)
            sequential.incr("n")
            shard = shards[rng.randrange(4)]
            shard.observe("v", value, boundaries=boundaries)
            shard.incr("n")
        merged = MetricsRegistry()
        for shard in shards:
            merged.merge(shard.snapshot())
        assert merged.snapshot() == sequential.snapshot()
