"""Tenant hot-add/remove over the authenticated admin endpoint.

Three layers of guarantees:

* **auth**: without a configured token every admin path is a plain 404
  (no probe oracle); with one, a missing/wrong bearer is a typed 401
  that validates against the error schema.
* **semantics**: added tenants serve immediately and show up in
  ``/v1/tenants``; removed tenants turn into typed ``unknown_tenant``
  404s; duplicates and unknown admission classes are typed 400s.
* **isolation**: surviving tenants' responses are byte-identical to a
  no-churn run with the same seed, and over real sockets concurrent
  traffic never sees a 500 while tenants churn underneath it.
"""

import json
import threading

import pytest

from repro.serve.admission import AdmissionClass, ClassedAdmissionController
from repro.serve.handlers import ServeApp, validate_error_body
from repro.serve.server import ReproHTTPServer
from repro.serve.tenants import ChaosConfig, TenantSpec, build_tenant_registry
from repro.testing.faults import FakeClock

TOKEN = "test-admin-token"
AUTH = {"authorization": f"Bearer {TOKEN}"}


def build_app(small_world, specs, admin_token=TOKEN, chaos=None, classes=()):
    clock = FakeClock()
    registry, _ = build_tenant_registry(
        small_world, specs, clock=clock, chaos=chaos
    )
    admission = ClassedAdmissionController(classes)
    return ServeApp(
        registry, admission=admission, clock=clock, admin_token=admin_token
    ), clock


def spec(name, **extra):
    return TenantSpec(
        name=name, rate=1000.0, burst=1000.0, deadline_ms=None, **extra
    )


def link_body(tenant):
    return json.dumps(
        {"tenant": tenant, "surface": "e", "user": 0, "now": 1.0}
    ).encode()


class TestAdminAuth:
    def test_admin_disabled_without_token(self, small_world):
        app, _ = build_app(small_world, [spec("alpha")], admin_token=None)
        status, doc = app.handle(
            "POST", "/admin/v1/tenants", b'{"name": "x"}', AUTH
        )
        assert (status, doc["error"]["type"]) == (404, "not_found")

    @pytest.mark.parametrize(
        "headers", [None, {}, {"authorization": "Bearer wrong"},
                    {"authorization": TOKEN}]
    )
    def test_missing_or_wrong_token_is_typed_401(self, small_world, headers):
        app, _ = build_app(small_world, [spec("alpha")])
        status, doc = app.handle(
            "POST", "/admin/v1/tenants", b'{"name": "x"}', headers
        )
        assert (status, doc["error"]["type"]) == (401, "unauthorized")
        assert validate_error_body(doc) == []
        # the body never echoes the presented credential
        assert TOKEN not in doc["error"]["message"]

    def test_unknown_admin_route_404s_with_auth(self, small_world):
        app, _ = build_app(small_world, [spec("alpha")])
        status, doc = app.handle("GET", "/admin/v1/tenants", None, AUTH)
        assert (status, doc["error"]["type"]) == (404, "not_found")


class TestHotAddRemove:
    def test_add_then_serve_then_remove(self, small_world):
        app, _ = build_app(small_world, [spec("alpha")])
        status, doc = app.handle(
            "POST", "/admin/v1/tenants",
            json.dumps({"name": "gamma", "rate": 500.0, "burst": 500.0,
                        "deadline_ms": None}).encode(),
            AUTH,
        )
        assert status == 200
        assert doc["added"] == "gamma"
        assert doc["tenants"] == ["alpha", "gamma"]
        assert doc["tenant"]["admission_class"] == "default"
        # the hot-added tenant serves immediately, no restart
        status, linked = app.handle("POST", "/v1/link", link_body("gamma"))
        assert status == 200
        assert linked["tenant"] == "gamma"
        status, doc = app.handle(
            "DELETE", "/admin/v1/tenants/gamma", None, AUTH
        )
        assert status == 200
        assert doc["removed"] == "gamma"
        assert doc["tenants"] == ["alpha"]
        status, doc = app.handle("POST", "/v1/link", link_body("gamma"))
        assert (status, doc["error"]["type"]) == (404, "unknown_tenant")

    def test_duplicate_add_is_typed_400(self, small_world):
        app, _ = build_app(small_world, [spec("alpha")])
        status, doc = app.handle(
            "POST", "/admin/v1/tenants", b'{"name": "alpha"}', AUTH
        )
        assert (status, doc["error"]["type"]) == (400, "bad_request")
        assert "duplicate" in doc["error"]["message"]

    def test_unknown_admission_class_is_typed_400(self, small_world):
        app, _ = build_app(
            small_world, [spec("alpha", admission_class="gold")],
            classes=[AdmissionClass(name="gold")],
        )
        status, doc = app.handle(
            "POST", "/admin/v1/tenants",
            b'{"name": "x", "admission_class": "platinum"}', AUTH,
        )
        assert (status, doc["error"]["type"]) == (400, "bad_request")
        assert "platinum" in doc["error"]["message"]

    @pytest.mark.parametrize(
        "body",
        [None, b"", b"not json", b"[1]", b'{"rate": 5.0}', b'{"name": ""}',
         b'{"name": "x", "rate": "fast"}', b'{"name": "x", "color": "red"}',
         b'{"name": "bad,name"}'],
    )
    def test_malformed_add_bodies_are_typed_400(self, small_world, body):
        app, _ = build_app(small_world, [spec("alpha")])
        status, doc = app.handle("POST", "/admin/v1/tenants", body, AUTH)
        assert (status, doc["error"]["type"]) == (400, "bad_request")
        assert validate_error_body(doc) == []

    def test_remove_unknown_tenant_is_typed_404(self, small_world):
        app, _ = build_app(small_world, [spec("alpha")])
        status, doc = app.handle(
            "DELETE", "/admin/v1/tenants/ghost", None, AUTH
        )
        assert (status, doc["error"]["type"]) == (404, "unknown_tenant")

    def test_removed_tenant_never_disturbs_survivors(self, small_world):
        """Byte-identity: alpha's responses with gamma hot-removed
        mid-trace equal a no-churn run with the same seed."""
        chaos = ChaosConfig(error_rate=0.3, slow_rate=0.2, slow_ms=40.0, seed=7)
        specs = [spec("alpha"), spec("gamma")]

        def run(churn):
            app, clock = build_app(small_world, specs, chaos=chaos)
            responses = []
            for index in range(12):
                clock.advance(0.05)
                if churn and index == 6:
                    status, doc = app.handle(
                        "DELETE", "/admin/v1/tenants/gamma", None, AUTH
                    )
                    assert status == 200
                status, doc = app.handle("POST", "/v1/link", link_body("alpha"))
                responses.append((status, json.dumps(doc, sort_keys=True)))
                if index >= 6:
                    status, doc = app.handle(
                        "POST", "/v1/link", link_body("gamma")
                    )
                    expected = (404, "unknown_tenant") if churn else (200,)
                    assert (status,) == expected[:1]
                    if churn:
                        assert doc["error"]["type"] == "unknown_tenant"
            return responses

        assert run(churn=False) == run(churn=True)


class TestAdminOverSockets:
    @pytest.fixture
    def server(self, small_world):
        app, _ = build_app(small_world, [spec("alpha")])
        with ReproHTTPServer(app, port=0) as server:
            yield server

    @staticmethod
    def request(server, method, path, body=None, token=TOKEN):
        import http.client

        connection = http.client.HTTPConnection(*server.address, timeout=10)
        try:
            headers = {}
            if token is not None:
                headers["Authorization"] = f"Bearer {token}"
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            return response.status, json.loads(response.read().decode())
        finally:
            connection.close()

    def test_churn_under_concurrent_traffic(self, server):
        """Hot-add gamma, hammer both tenants from threads, hot-remove
        gamma, keep hammering: no 500s ever, alpha never misses."""
        status, _ = self.request(
            server, "POST", "/admin/v1/tenants",
            b'{"name": "gamma", "rate": 1000.0, "burst": 1000.0, '
            b'"deadline_ms": null}',
        )
        assert status == 200
        results = []
        lock = threading.Lock()

        def hammer(tenant, rounds=10):
            for _ in range(rounds):
                status, doc = self.request(
                    server, "POST", "/v1/link", link_body(tenant), token=None
                )
                with lock:
                    results.append((tenant, status, doc))

        def churn():
            status, _ = self.request(
                server, "DELETE", "/admin/v1/tenants/gamma"
            )
            assert status == 200

        threads = [
            threading.Thread(target=hammer, args=("alpha",)),
            threading.Thread(target=hammer, args=("gamma",)),
            threading.Thread(target=churn),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(status != 500 for _, status, _ in results)
        assert all(
            status == 200 for tenant, status, _ in results if tenant == "alpha"
        )
        for tenant, status, doc in results:
            if tenant == "gamma" and status != 200:
                # in-flight requests finish; only *new* lookups 404
                assert status == 404
                assert doc["error"]["type"] == "unknown_tenant"
        status, doc = self.request(
            server, "POST", "/v1/link", link_body("gamma"), token=None
        )
        assert (status, doc["error"]["type"]) == (404, "unknown_tenant")
