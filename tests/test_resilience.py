"""Fault-tolerant online serving: taxonomy, ingestion, degradation, recovery.

Every scenario runs under *seeded* fault injection
(:mod:`repro.testing.faults`), so each degradation path executes
deterministically on every run.  The three acceptance scenarios of the
resilience layer:

(a) the linker returns degraded-but-ranked results when reachability
    fails (``TestGracefulDegradation``),
(b) out-of-order delivery within the lateness bound yields complemented-KB
    state identical to in-order delivery (``TestReorderingBuffer``),
(c) crash + restore from checkpoint yields the same link counts as an
    uninterrupted run (``TestCrashRecovery``).
"""

import math

import pytest

from repro.config import DAY, LinkerConfig
from repro.core.linker import SocialTemporalLinker
from repro.errors import (
    CheckpointCorruptError,
    CircuitOpenError,
    DeadlineExceededError,
    DuplicateTweetError,
    IndexUnavailableError,
    MalformedTweetError,
    ReproError,
    StaleTimestampError,
    TransientError,
    UnknownUserError,
    is_transient,
)
from repro.graph.digraph import DiGraph
from repro.kb.checkpoint import (
    load_checkpoint,
    restore,
    save_checkpoint,
    snapshot,
)
from repro.kb.complemented import ComplementedKnowledgebase
from repro.resilience.breaker import BreakerState, CircuitBreaker
from repro.search import PersonalizedSearchEngine, TweetStore
from repro.stream.ingest import DeadLetter, ResilientIngestor, TweetValidator
from repro.stream.tweet import MentionSpan, Tweet
from repro.testing.faults import (
    FakeClock,
    FaultSchedule,
    FlakyReachabilityProvider,
    FlakyTweetSource,
    FlakyTweetStore,
    corrupt_record,
    corruption_modes,
)


@pytest.fixture
def social_graph():
    graph = DiGraph(13)
    graph.add_edge(0, 10)
    graph.add_edge(5, 11)
    graph.add_edge(1, 10)
    graph.add_edge(1, 12)
    return graph


def make_linker(ckb, graph, **kwargs):
    config = kwargs.pop(
        "config", LinkerConfig(burst_threshold=2, influential_users=2)
    )
    return SocialTemporalLinker(ckb, graph, config=config, **kwargs)


def make_tweet(tweet_id, timestamp, user=0, surface="jordan", entity=0):
    return Tweet(
        tweet_id=tweet_id,
        user=user,
        timestamp=timestamp,
        text=f"{surface} highlight reel",
        mentions=(MentionSpan(surface, true_entity=entity),),
    )


def assert_ckb_equal(a: ComplementedKnowledgebase, b: ComplementedKnowledgebase):
    assert a.total_links == b.total_links
    assert sorted(a.linked_entities()) == sorted(b.linked_entities())
    for entity_id in a.linked_entities():
        assert a.user_counts(entity_id) == b.user_counts(entity_id)
        assert [
            (r.user, r.timestamp, r.tweet_id) for r in a.tweets_of(entity_id)
        ] == [(r.user, r.timestamp, r.tweet_id) for r in b.tweets_of(entity_id)]


# ---------------------------------------------------------------------- #
# error taxonomy
# ---------------------------------------------------------------------- #
class TestTaxonomy:
    def test_all_errors_share_one_base(self):
        for exc in (
            MalformedTweetError,
            UnknownUserError,
            StaleTimestampError,
            DuplicateTweetError,
            IndexUnavailableError,
            DeadlineExceededError,
            CircuitOpenError,
            CheckpointCorruptError,
        ):
            assert issubclass(exc, ReproError)

    def test_transient_classification(self):
        assert issubclass(IndexUnavailableError, TransientError)
        assert is_transient(IndexUnavailableError("x"))
        assert is_transient(CircuitOpenError("x"))
        assert not is_transient(DeadlineExceededError("x"))
        assert not is_transient(MalformedTweetError("x"))
        assert not is_transient(ValueError("x"))

    def test_circuit_open_is_index_unavailable(self):
        # one except-clause in the linker covers both
        assert issubclass(CircuitOpenError, IndexUnavailableError)


# ---------------------------------------------------------------------- #
# dataclass validation (satellite)
# ---------------------------------------------------------------------- #
class TestTweetValidationInvariants:
    def test_rejects_empty_text(self):
        with pytest.raises(ValueError):
            Tweet(tweet_id=1, user=0, timestamp=0.0, text="   ")

    def test_rejects_nan_timestamp(self):
        with pytest.raises(ValueError):
            Tweet(tweet_id=1, user=0, timestamp=float("nan"), text="hi")

    def test_rejects_negative_timestamp(self):
        with pytest.raises(ValueError):
            Tweet(tweet_id=1, user=0, timestamp=-1.0, text="hi")

    def test_rejects_negative_ids(self):
        with pytest.raises(ValueError):
            Tweet(tweet_id=-1, user=0, timestamp=0.0, text="hi")
        with pytest.raises(ValueError):
            Tweet(tweet_id=1, user=-2, timestamp=0.0, text="hi")

    def test_rejects_empty_surface(self):
        with pytest.raises(ValueError):
            MentionSpan("  ")

    def test_ckb_rejects_non_finite_link_timestamp(self, tiny_ckb):
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(ValueError):
                tiny_ckb.link_tweet(0, user=10, timestamp=bad)
        # the sorted-timestamp invariant survived the rejected writes
        timestamps = [r.timestamp for r in tiny_ckb.tweets_of(0)]
        assert all(map(math.isfinite, timestamps))


# ---------------------------------------------------------------------- #
# validator + dead-letter queue
# ---------------------------------------------------------------------- #
class TestValidator:
    @pytest.mark.parametrize("mode", corruption_modes())
    def test_every_corruption_mode_rejected(self, mode):
        record = corrupt_record(make_tweet(7, 100.0), mode)
        with pytest.raises(MalformedTweetError):
            TweetValidator().validate(record)

    def test_unknown_author_rejected(self):
        validator = TweetValidator(known_users=range(10))
        with pytest.raises(UnknownUserError):
            validator.validate(make_tweet(1, 5.0, user=99))

    def test_whitespace_repaired_and_counted(self):
        validator = TweetValidator()
        tweet = validator.validate(
            {"tweet_id": 3, "user": 1, "timestamp": 9.0, "text": "  padded  "}
        )
        assert tweet.text == "padded"
        assert validator.repairs == 1

    def test_numeric_strings_coerced(self):
        tweet = TweetValidator().validate(
            {"tweet_id": "4", "user": "2", "timestamp": "8.5", "text": "ok"}
        )
        assert (tweet.tweet_id, tweet.user, tweet.timestamp) == (4, 2, 8.5)

    def test_mention_surfaces_accepted(self):
        tweet = TweetValidator().validate(
            {
                "tweet_id": 5,
                "user": 0,
                "timestamp": 1.0,
                "text": "jordan",
                "mentions": ["jordan", {"surface": "nba", "true_entity": 4}],
            }
        )
        assert [m.surface for m in tweet.mentions] == ["jordan", "nba"]
        assert tweet.mentions[1].true_entity == 4

    def test_poison_records_dead_letter_not_raise(self):
        ingestor = ResilientIngestor()
        for mode in corruption_modes():
            assert ingestor.push(corrupt_record(make_tweet(11, 50.0), mode)) == []
        assert ingestor.stats.dead_lettered == len(corruption_modes())
        assert all(d.reason == "malformed" for d in ingestor.dead_letters)
        assert ingestor.stats.admitted == 0

    def test_dead_letter_reasons_structured(self):
        ingestor = ResilientIngestor(
            validator=TweetValidator(known_users=range(5))
        )
        ingestor.push(make_tweet(1, 100.0, user=0))
        ingestor.push(make_tweet(1, 101.0, user=0))  # duplicate id
        ingestor.push(make_tweet(2, 50.0, user=0))  # behind watermark
        ingestor.push(make_tweet(3, 102.0, user=99))  # unknown author
        assert all(isinstance(d, DeadLetter) for d in ingestor.dead_letters)
        reasons = [d.reason for d in ingestor.dead_letters]
        assert reasons == ["duplicate", "stale", "unknown_user"]
        assert ingestor.stats.duplicates == 1
        assert ingestor.stats.stale == 1


# ---------------------------------------------------------------------- #
# reordering buffer (acceptance b)
# ---------------------------------------------------------------------- #
class TestReorderingBuffer:
    def test_in_order_zero_lateness_passthrough(self):
        ingestor = ResilientIngestor(lateness=0.0)
        released = []
        for i in range(5):
            released.extend(ingestor.push(make_tweet(i, float(i))))
        released.extend(ingestor.flush())
        assert [t.tweet_id for t in released] == [0, 1, 2, 3, 4]

    def test_out_of_order_within_lateness_resorted(self):
        ingestor = ResilientIngestor(lateness=10.0)
        order = [3.0, 1.0, 2.0, 7.0, 5.0, 12.0, 11.0, 30.0]
        released = []
        for i, ts in enumerate(order):
            released.extend(ingestor.push(make_tweet(i, ts)))
        released.extend(ingestor.flush())
        assert [t.timestamp for t in released] == sorted(order)
        assert ingestor.stats.dead_lettered == 0

    def test_disorder_yields_identical_ckb_state(self, tiny_kb):
        """Acceptance (b): same complemented-KB state either way."""
        timestamps = [5.0, 1.0, 3.0, 2.0, 8.0, 6.0, 11.0, 9.0, 15.0, 13.0]
        disordered = [
            make_tweet(i, ts, user=10 + (i % 3), entity=i % 2)
            for i, ts in enumerate(timestamps)
        ]
        in_order = sorted(disordered, key=lambda t: t.timestamp)

        def run(tweets):
            ckb = ComplementedKnowledgebase(tiny_kb)
            ingestor = ResilientIngestor(lateness=10.0)
            emitted = ingestor.ingest(tweets) + ingestor.flush()
            for tweet in emitted:
                for mention in tweet.labeled_mentions():
                    ckb.link_tweet(
                        mention.true_entity, tweet.user, tweet.timestamp,
                        tweet.tweet_id,
                    )
            return ckb

        assert_ckb_equal(run(in_order), run(disordered))

    def test_late_beyond_bound_dead_lettered(self):
        ingestor = ResilientIngestor(lateness=5.0)
        ingestor.push(make_tweet(0, 100.0))
        assert ingestor.push(make_tweet(1, 94.0)) == []
        assert ingestor.dead_letters[0].reason == "stale"
        # within the bound is still fine
        ingestor.push(make_tweet(2, 96.0))
        assert ingestor.stats.admitted == 2

    def test_buffer_cap_forces_emission(self):
        ingestor = ResilientIngestor(lateness=1e9, max_buffer=3)
        released = []
        for i in range(6):
            released.extend(ingestor.push(make_tweet(i, float(i))))
        # watermark never advances past anything, but the cap drains oldest
        assert len(released) == 3
        assert [t.tweet_id for t in released] == [0, 1, 2]
        assert ingestor.pending == 3


# ---------------------------------------------------------------------- #
# retry with backoff
# ---------------------------------------------------------------------- #
class TestRetry:
    def test_transient_failures_retried_to_success(self):
        source = FlakyTweetSource(
            [make_tweet(0, 1.0)], FaultSchedule(fail_first=2)
        )
        ingestor = ResilientIngestor(max_retries=3, seed=42)
        record = ingestor.fetch(source)
        assert record.tweet_id == 0
        assert ingestor.stats.retries == 2
        assert ingestor.total_backoff > 0.0

    def test_retries_exhausted_reraises(self):
        source = FlakyTweetSource(
            [make_tweet(0, 1.0)], FaultSchedule(fail_first=10)
        )
        ingestor = ResilientIngestor(max_retries=2)
        with pytest.raises(IndexUnavailableError):
            ingestor.fetch(source)
        assert ingestor.stats.retries == 2

    def test_non_transient_not_retried(self):
        calls = []

        def broken():
            calls.append(1)
            raise ValueError("permanent")

        ingestor = ResilientIngestor(max_retries=5)
        with pytest.raises(ValueError):
            ingestor.fetch(broken)
        assert len(calls) == 1

    def test_backoff_is_seeded_deterministic(self):
        def run(seed):
            source = FlakyTweetSource(
                [make_tweet(0, 1.0)], FaultSchedule(fail_first=3)
            )
            ingestor = ResilientIngestor(max_retries=4, seed=seed)
            ingestor.fetch(source)
            return ingestor.total_backoff

        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_flaky_feed_end_to_end_loses_nothing(self):
        tweets = [make_tweet(i, float(i)) for i in range(20)]
        source = FlakyTweetSource(
            tweets, FaultSchedule(seed=3, error_rate=0.3)
        )
        ingestor = ResilientIngestor(max_retries=8, seed=1)
        emitted = []
        while not source.exhausted:
            emitted.extend(ingestor.push(ingestor.fetch(source)))
        emitted.extend(ingestor.flush())
        assert [t.tweet_id for t in emitted] == list(range(20))


# ---------------------------------------------------------------------- #
# graceful degradation in the linker (acceptance a)
# ---------------------------------------------------------------------- #
class TestGracefulDegradation:
    def test_no_faults_results_identical_and_not_degraded(
        self, tiny_ckb, social_graph
    ):
        baseline = make_linker(tiny_ckb, social_graph)
        provider = FlakyReachabilityProvider(
            baseline._reachability, FaultSchedule()  # never faults
        )
        wrapped = make_linker(
            tiny_ckb, social_graph, reachability=provider,
            breaker=CircuitBreaker(),
        )
        a = baseline.link("jordan", user=0, now=100 * DAY)
        b = wrapped.link("jordan", user=0, now=100 * DAY)
        assert a.ranked == b.ranked
        assert not b.degraded and b.degradation is None

    def test_index_failure_degrades_but_ranks(self, tiny_ckb, social_graph):
        """Acceptance (a): degraded results are still ranked by β·S_r+γ·S_p."""
        healthy = make_linker(tiny_ckb, social_graph)
        failing = FlakyReachabilityProvider(
            healthy._reachability, FaultSchedule(error_rate=1.0)
        )
        degraded_linker = make_linker(
            tiny_ckb, social_graph, reachability=failing
        )
        result = degraded_linker.link("jordan", user=0, now=100 * DAY)
        assert result.degraded
        assert result.degradation == "index_unavailable"
        assert result.ranked  # still a full ranking
        config = degraded_linker.config
        for candidate in result.ranked:
            assert candidate.interest == 0.0
            assert candidate.score == pytest.approx(
                config.beta * candidate.recency + config.gamma * candidate.popularity
            )
            assert candidate.score <= config.no_interest_bound + 1e-12

    def test_degraded_matches_zero_alpha_ranking(self, tiny_ckb, social_graph):
        healthy = make_linker(tiny_ckb, social_graph)
        failing = FlakyReachabilityProvider(
            healthy._reachability, FaultSchedule(error_rate=1.0)
        )
        degraded_linker = make_linker(tiny_ckb, social_graph, reachability=failing)
        degraded = degraded_linker.link("jordan", user=0, now=100 * DAY)
        # the fallback must rank exactly like the no-interest bound scoring
        entity_order = [c.entity_id for c in degraded.ranked]
        recency = {c.entity_id: c.recency for c in degraded.ranked}
        popularity = {c.entity_id: c.popularity for c in degraded.ranked}
        config = degraded_linker.config
        expected = sorted(
            entity_order,
            key=lambda e: (
                -(config.beta * recency[e] + config.gamma * popularity[e]),
                e,
            ),
        )
        assert entity_order == expected

    def test_deadline_budget_degrades(self, tiny_ckb, social_graph):
        clock = FakeClock()
        healthy = make_linker(tiny_ckb, social_graph)
        slow = FlakyReachabilityProvider(
            healthy._reachability, FaultSchedule(), clock=clock, latency=0.05
        )
        linker = make_linker(
            tiny_ckb,
            social_graph,
            config=LinkerConfig(
                burst_threshold=2, influential_users=2, deadline_ms=75.0
            ),
            reachability=slow,
            clock=clock,
        )
        result = linker.link("jordan", user=0, now=100 * DAY)
        assert result.degraded
        assert result.degradation == "deadline_exceeded"
        assert result.ranked

    def test_generous_deadline_not_degraded(self, tiny_ckb, social_graph):
        clock = FakeClock()
        healthy = make_linker(tiny_ckb, social_graph)
        slow = FlakyReachabilityProvider(
            healthy._reachability, FaultSchedule(), clock=clock, latency=0.001
        )
        linker = make_linker(
            tiny_ckb,
            social_graph,
            config=LinkerConfig(
                burst_threshold=2, influential_users=2, deadline_ms=10_000.0
            ),
            reachability=slow,
            clock=clock,
        )
        result = linker.link("jordan", user=0, now=100 * DAY)
        assert not result.degraded

    def test_pipeline_and_search_surface_degradation(
        self, tiny_ckb, social_graph
    ):
        from repro.core.pipeline import TextLinkingPipeline

        healthy = make_linker(tiny_ckb, social_graph)
        failing = FlakyReachabilityProvider(
            healthy._reachability, FaultSchedule(error_rate=1.0)
        )
        linker = make_linker(tiny_ckb, social_graph, reachability=failing)
        annotated = TextLinkingPipeline(linker).annotate(
            "jordan dunks again", user=0, now=100 * DAY
        )
        assert annotated.degraded

        store = TweetStore(
            [make_tweet(50, 99 * DAY, user=10)]
        )
        engine = PersonalizedSearchEngine(linker, store)
        response = engine.search("jordan", user=0, now=100 * DAY)
        assert response.degraded


# ---------------------------------------------------------------------- #
# circuit breaker
# ---------------------------------------------------------------------- #
class TestCircuitBreaker:
    def test_trips_after_threshold(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, clock=clock)
        for _ in range(3):
            with pytest.raises(IndexUnavailableError):
                breaker.call(self._fail)
        assert breaker.state is BreakerState.OPEN
        with pytest.raises(CircuitOpenError):
            breaker.call(lambda: 1)

    def test_half_open_probe_recovers(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, recovery_timeout=10.0, clock=clock
        )
        with pytest.raises(IndexUnavailableError):
            breaker.call(self._fail)
        assert breaker.state is BreakerState.OPEN
        clock.advance(10.0)
        assert breaker.state is BreakerState.HALF_OPEN
        assert breaker.call(lambda: 42) == 42
        assert breaker.state is BreakerState.CLOSED

    def test_failed_probe_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, recovery_timeout=5.0, clock=clock
        )
        with pytest.raises(IndexUnavailableError):
            breaker.call(self._fail)
        clock.advance(5.0)
        with pytest.raises(IndexUnavailableError):
            breaker.call(self._fail)
        assert breaker.state is BreakerState.OPEN
        assert breaker.trip_count == 2

    def test_linker_fast_fails_while_open(self, tiny_ckb, social_graph):
        clock = FakeClock()
        healthy = make_linker(tiny_ckb, social_graph)
        failing = FlakyReachabilityProvider(
            healthy._reachability, FaultSchedule(error_rate=1.0)
        )
        # the linker aborts interest scoring at the first provider error,
        # so each degraded link() records exactly one breaker failure
        breaker = CircuitBreaker(failure_threshold=1, clock=clock)
        linker = make_linker(
            tiny_ckb, social_graph, reachability=failing, breaker=breaker
        )
        first = linker.link("jordan", user=0, now=100 * DAY)
        assert first.degraded
        assert breaker.state is BreakerState.OPEN
        calls_after_trip = failing.calls
        # breaker open: the provider is no longer even consulted
        second = linker.link("jordan", user=0, now=100 * DAY)
        assert second.degradation == "circuit_open"
        assert failing.calls == calls_after_trip

    def test_linker_recovers_after_probe(self, tiny_ckb, social_graph):
        clock = FakeClock()
        healthy = make_linker(tiny_ckb, social_graph)
        # fails long enough to trip, then heals
        flaky = FlakyReachabilityProvider(
            healthy._reachability, FaultSchedule(fail_first=2)
        )
        breaker = CircuitBreaker(
            failure_threshold=2, recovery_timeout=30.0, clock=clock
        )
        linker = make_linker(
            tiny_ckb, social_graph, reachability=flaky, breaker=breaker
        )
        assert linker.link("jordan", user=0, now=100 * DAY).degraded
        assert linker.link("jordan", user=0, now=100 * DAY).degraded
        assert breaker.state is BreakerState.OPEN
        clock.advance(30.0)
        recovered = linker.link("jordan", user=0, now=100 * DAY)
        assert not recovered.degraded
        assert breaker.state is BreakerState.CLOSED
        expected = healthy.link("jordan", user=0, now=100 * DAY)
        assert recovered.ranked == expected.ranked

    @staticmethod
    def _fail():
        raise IndexUnavailableError("down")


# ---------------------------------------------------------------------- #
# checkpoint / recovery
# ---------------------------------------------------------------------- #
class TestCheckpoint:
    def test_roundtrip_preserves_state(self, tiny_ckb, tiny_kb, tmp_path):
        path = str(tmp_path / "ckpt.json")
        save_checkpoint(snapshot(tiny_ckb, 42.0, [1, 2, 3]), path)
        loaded = load_checkpoint(path)
        assert loaded.watermark == 42.0
        assert loaded.applied_ids == frozenset({1, 2, 3})
        assert_ckb_equal(tiny_ckb, restore(tiny_kb, loaded))

    def test_gzip_roundtrip(self, tiny_ckb, tiny_kb, tmp_path):
        path = str(tmp_path / "ckpt.json.gz")
        save_checkpoint(snapshot(tiny_ckb), path)
        assert_ckb_equal(tiny_ckb, restore(tiny_kb, load_checkpoint(path)))

    def test_checksum_corruption_detected(self, tiny_ckb, tmp_path):
        import re

        path = str(tmp_path / "ckpt.json")
        save_checkpoint(snapshot(tiny_ckb), path)
        with open(path) as handle:
            text = handle.read()
        # flip one payload digit inside the links array (9 -> 8 avoids
        # the no-op case where the original digit already is the target)
        mutated = re.sub(
            r'("links": \[\[)(\d)',
            lambda m: m.group(1) + ("8" if m.group(2) == "9" else "9"),
            text,
        )
        assert mutated != text
        with open(path, "w") as handle:
            handle.write(mutated)
        with pytest.raises(CheckpointCorruptError):
            load_checkpoint(path)

    def test_truncated_file_detected(self, tiny_ckb, tmp_path):
        path = str(tmp_path / "ckpt.json")
        save_checkpoint(snapshot(tiny_ckb), path)
        with open(path) as handle:
            text = handle.read()
        with open(path, "w") as handle:
            handle.write(text[: len(text) // 2])
        with pytest.raises(CheckpointCorruptError):
            load_checkpoint(path)

    def test_wrong_magic_rejected(self, tmp_path):
        path = str(tmp_path / "other.json")
        with open(path, "w") as handle:
            handle.write('{"magic": "something-else", "version": 1}')
        with pytest.raises(CheckpointCorruptError):
            load_checkpoint(path)

    def test_unsupported_version_rejected(self, tiny_ckb, tmp_path):
        path = str(tmp_path / "ckpt.json")
        save_checkpoint(snapshot(tiny_ckb), path)
        with open(path) as handle:
            text = handle.read()
        with open(path, "w") as handle:
            handle.write(text.replace('"version": 1', '"version": 99'))
        with pytest.raises(CheckpointCorruptError):
            load_checkpoint(path)

    def test_missing_file_is_corrupt_error(self, tmp_path):
        with pytest.raises(CheckpointCorruptError):
            load_checkpoint(str(tmp_path / "nope.json"))

    def test_empty_watermark_serialized_as_none(self, tiny_ckb, tmp_path):
        path = str(tmp_path / "ckpt.json")
        save_checkpoint(snapshot(tiny_ckb, float("-inf")), path)
        assert load_checkpoint(path).watermark is None


class TestCrashRecovery:
    """Acceptance (c): kill mid-ingest, restore, replay — same link counts."""

    LATENESS = 4.0

    @staticmethod
    def records():
        # deliberately out of order within the lateness bound
        timestamps = [2.0, 1.0, 4.0, 3.0, 6.0, 5.0, 8.0, 7.0, 10.0, 9.0,
                      12.0, 11.0, 14.0, 13.0, 16.0, 15.0]
        return [
            make_tweet(i, ts, user=10 + (i % 3), entity=i % 2)
            for i, ts in enumerate(timestamps)
        ]

    def apply(self, ckb, tweets, applied):
        for tweet in tweets:
            for mention in tweet.labeled_mentions():
                ckb.link_tweet(
                    mention.true_entity, tweet.user, tweet.timestamp, tweet.tweet_id
                )
            applied.add(tweet.tweet_id)

    def uninterrupted(self, kb):
        ckb = ComplementedKnowledgebase(kb)
        ingestor = ResilientIngestor(lateness=self.LATENESS)
        applied = set()
        self.apply(ckb, ingestor.ingest(self.records()), applied)
        self.apply(ckb, ingestor.flush(), applied)
        return ckb

    def test_restore_and_replay_matches_uninterrupted(self, tiny_kb, tmp_path):
        path = str(tmp_path / "crash.json")
        records = self.records()

        # --- first incarnation: crash after 10 arrivals, checkpoint at 8 ---
        ckb = ComplementedKnowledgebase(tiny_kb)
        ingestor = ResilientIngestor(lateness=self.LATENESS)
        applied = set()
        for index, record in enumerate(records[:10], start=1):
            self.apply(ckb, ingestor.push(record), applied)
            if index == 8:
                save_checkpoint(snapshot(ckb, ingestor.watermark, applied), path)
        # crash: arrivals 9-10 and everything buffered after the checkpoint
        # are lost with the process

        # --- second incarnation: restore, then replay the full feed ---
        checkpoint = load_checkpoint(path)
        ckb2 = restore(tiny_kb, checkpoint)
        ingestor2 = ResilientIngestor(
            lateness=self.LATENESS, seen_ids=checkpoint.applied_ids
        )
        applied2 = set(checkpoint.applied_ids)
        self.apply(ckb2, ingestor2.ingest(records), applied2)
        self.apply(ckb2, ingestor2.flush(), applied2)

        # already-applied arrivals were deduplicated, not double-counted
        assert ingestor2.stats.duplicates == len(checkpoint.applied_ids)
        assert_ckb_equal(self.uninterrupted(tiny_kb), ckb2)

    def test_double_delivery_never_double_counts(self, tiny_kb):
        ckb = ComplementedKnowledgebase(tiny_kb)
        ingestor = ResilientIngestor(lateness=self.LATENESS)
        applied = set()
        records = self.records()
        self.apply(ckb, ingestor.ingest(records + records), applied)
        self.apply(ckb, ingestor.flush(), applied)
        assert ingestor.stats.duplicates == len(records)
        assert_ckb_equal(self.uninterrupted(tiny_kb), ckb)


# ---------------------------------------------------------------------- #
# flaky store wrapper
# ---------------------------------------------------------------------- #
class TestFlakyStore:
    def test_injects_faults_and_corruption(self):
        store = TweetStore([make_tweet(1, 5.0), make_tweet(2, 6.0)])
        flaky = FlakyTweetStore(
            store,
            schedule=FaultSchedule(fail_calls=[0]),
            corrupt_schedule=FaultSchedule(fail_calls=[0]),
        )
        with pytest.raises(IndexUnavailableError):
            flaky.get(1)
        corrupted = flaky.get(1)
        assert corrupted.tweet_id == 1
        assert corrupted.text != store.get(1).text
        assert flaky.get(2).text == store.get(2).text


# ---------------------------------------------------------------------- #
# defaults leave the batch/eval path untouched
# ---------------------------------------------------------------------- #
class TestDefaultsUnchanged:
    def test_default_linker_has_no_guards(self, tiny_ckb, social_graph):
        linker = make_linker(tiny_ckb, social_graph)
        assert linker._guarded_provider() is linker._reachability

    def test_eval_accuracy_identical_with_resilience_wiring(self, small_context):
        run_plain = small_context.social_temporal().run(
            small_context.test_dataset
        )
        wired = SocialTemporalLinker(
            small_context.ckb,
            small_context.world.graph,
            config=small_context.config,
            reachability=FlakyReachabilityProvider(
                small_context.closure, FaultSchedule()  # injection off
            ),
            propagation_network=small_context.propagation_network,
            breaker=CircuitBreaker(),
        )
        from repro.eval.harness import SocialTemporalAdapter

        run_wired = SocialTemporalAdapter(wired).run(small_context.test_dataset)
        assert run_plain.predictions == run_wired.predictions


# ---------------------------------------------------------------------- #
# breaker snapshot (typed introspection instead of __repr__ parsing)
# ---------------------------------------------------------------------- #
class TestBreakerSnapshot:
    EXPECTED_KEYS = {
        "schema_version", "state", "trip_count", "consecutive_failures",
        "half_open_successes", "failure_threshold", "success_threshold",
        "recovery_timeout_s", "time_to_probe_s", "trip_reasons",
    }

    def test_closed_snapshot_shape(self):
        snap = CircuitBreaker(clock=FakeClock()).snapshot()
        assert set(snap) == self.EXPECTED_KEYS
        assert snap["schema_version"] == 1
        assert snap["state"] == "closed"
        assert snap["trip_count"] == 0
        assert snap["time_to_probe_s"] is None
        assert snap["trip_reasons"] == []

    def test_open_snapshot_counts_down_to_probe(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, recovery_timeout=10.0, clock=clock
        )
        breaker.record_failure()
        assert breaker.snapshot()["state"] == "open"
        assert breaker.snapshot()["time_to_probe_s"] == 10.0
        clock.advance(7.5)
        snap = breaker.snapshot()
        assert snap["time_to_probe_s"] == 2.5
        assert snap["trip_count"] == 1
        assert snap["trip_reasons"] == ["1 consecutive failures"]

    def test_snapshot_resolves_elapsed_timeout_to_half_open(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, recovery_timeout=5.0, clock=clock
        )
        breaker.record_failure()
        clock.advance(5.0)
        snap = breaker.snapshot()
        assert snap["state"] == "half_open"
        assert snap["time_to_probe_s"] is None

    def test_trip_reason_history_is_bounded_newest_last(self):
        from repro.resilience.breaker import TRIP_HISTORY_LIMIT

        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, recovery_timeout=1.0, clock=clock
        )
        trips = TRIP_HISTORY_LIMIT + 3
        for _ in range(trips):
            clock.advance(1.0)
            assert breaker.state is not BreakerState.OPEN
            breaker.record_failure()  # half-open probe failure re-trips
        snap = breaker.snapshot()
        assert snap["trip_count"] == trips
        assert len(snap["trip_reasons"]) == TRIP_HISTORY_LIMIT
        assert snap["trip_reasons"][-1] == "probe failed"

    def test_snapshot_is_json_round_trippable(self):
        import json

        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, clock=clock)
        breaker.record_failure()
        snap = breaker.snapshot()
        assert json.loads(json.dumps(snap, sort_keys=True)) == snap


# ---------------------------------------------------------------------- #
# dead-letter overflow (bounded queue, oldest evicted first)
# ---------------------------------------------------------------------- #
class TestDeadLetterOverflow:
    @staticmethod
    def bad_record(index):
        # empty text is irreparable -> MalformedTweetError -> dead letter
        return {"tweet_id": index, "user": 0, "timestamp": 1.0, "text": "   "}

    def test_overflow_evicts_oldest_and_counts(self):
        ingestor = ResilientIngestor(max_dead_letters=3)
        for index in range(5):
            assert ingestor.push(self.bad_record(index)) == []
        assert len(ingestor.dead_letters) == 3
        kept = [letter.record["tweet_id"] for letter in ingestor.dead_letters]
        assert kept == [2, 3, 4]  # 0 and 1 were evicted, oldest first
        assert ingestor.stats.dead_lettered == 5
        assert ingestor.stats.dead_letter_evictions == 2

    def test_exactly_at_capacity_keeps_everything(self):
        ingestor = ResilientIngestor(max_dead_letters=3)
        for index in range(3):
            ingestor.push(self.bad_record(index))
        assert len(ingestor.dead_letters) == 3
        assert ingestor.stats.dead_letter_evictions == 0

    def test_eviction_metric_emitted(self):
        from repro.obs.metrics import METRICS

        METRICS.reset()
        ingestor = ResilientIngestor(max_dead_letters=1)
        ingestor.push(self.bad_record(0))
        ingestor.push(self.bad_record(1))
        assert METRICS.counter("ingest.dead_letters.evicted") == 1

    def test_drain_returns_and_clears(self):
        ingestor = ResilientIngestor(max_dead_letters=2)
        ingestor.push(self.bad_record(0))
        ingestor.push(self.bad_record(1))
        drained = ingestor.drain()
        assert [letter.record["tweet_id"] for letter in drained] == [0, 1]
        assert all(isinstance(letter, DeadLetter) for letter in drained)
        assert len(ingestor.dead_letters) == 0
        assert ingestor.drain() == []
        # the counter survives the drain: it tracks loss, not occupancy
        assert ingestor.stats.dead_lettered == 2

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            ResilientIngestor(max_dead_letters=0)


# ---------------------------------------------------------------------- #
# checkpoint corruption matrix: truncations and bit flips must always
# surface as CheckpointCorruptError and leave the live KB untouched
# ---------------------------------------------------------------------- #
class TestCheckpointCorruptionMatrix:
    @staticmethod
    def write(tiny_ckb, tmp_path, suffix):
        path = str(tmp_path / f"ckpt.json{suffix}")
        save_checkpoint(snapshot(tiny_ckb, 42.0, [1, 2, 3]), path)
        with open(path, "rb") as handle:
            return path, handle.read()

    @staticmethod
    def assert_rejected_cleanly(path, tiny_kb, tiny_ckb, reference):
        """The one acceptance shape: typed error, no KB side effects."""
        with pytest.raises(CheckpointCorruptError):
            load_checkpoint(path)
        assert_ckb_equal(tiny_ckb, reference)

    @staticmethod
    def assert_no_silent_corruption(path, tiny_kb, tiny_ckb, reference):
        """Weaker shape for mutations that may be semantic no-ops (gzip
        header metadata like MTIME/XFL/OS): either a typed rejection, or
        a load that restores *exactly* the reference state.  What must
        never happen is an untyped exception or a silently different KB.
        """
        try:
            loaded = load_checkpoint(path)
        except CheckpointCorruptError:
            pass
        else:
            assert_ckb_equal(restore(tiny_kb, loaded), reference)
        assert_ckb_equal(tiny_ckb, reference)

    @pytest.fixture
    def reference(self, tiny_kb, tiny_ckb):
        return restore(tiny_kb, snapshot(tiny_ckb))

    @pytest.mark.parametrize("suffix", ["", ".gz"])
    @pytest.mark.parametrize("fraction", [0.0, 0.1, 0.35, 0.6, 0.9, 0.999])
    def test_truncations(
        self, tiny_kb, tiny_ckb, reference, tmp_path, suffix, fraction
    ):
        path, data = self.write(tiny_ckb, tmp_path, suffix)
        cut = int(len(data) * fraction)
        assert cut < len(data)
        with open(path, "wb") as handle:
            handle.write(data[:cut])
        self.assert_rejected_cleanly(path, tiny_kb, tiny_ckb, reference)

    @pytest.mark.parametrize("suffix", ["", ".gz"])
    def test_single_bit_flips_across_the_file(
        self, tiny_kb, tiny_ckb, reference, tmp_path, suffix
    ):
        path, data = self.write(tiny_ckb, tmp_path, suffix)
        stride = max(1, len(data) // 40)
        for offset in range(0, len(data), stride):
            for bit in (0, 3, 7):
                mutated = bytearray(data)
                mutated[offset] ^= 1 << bit
                with open(path, "wb") as handle:
                    handle.write(bytes(mutated))
                if suffix == ".gz":
                    # gzip header metadata (MTIME/XFL/OS) doesn't affect
                    # the decompressed bytes; only silent *difference* is
                    # corruption there
                    self.assert_no_silent_corruption(
                        path, tiny_kb, tiny_ckb, reference
                    )
                else:
                    self.assert_rejected_cleanly(path, tiny_kb, tiny_ckb, reference)

    def test_bit_flip_in_every_checksum_region_byte(
        self, tiny_kb, tiny_ckb, reference, tmp_path
    ):
        path, data = self.write(tiny_ckb, tmp_path, "")
        start = data.index(b'"checksum"')
        for offset in range(start + len(b'"checksum": "'), start + 40):
            mutated = bytearray(data)
            mutated[offset] ^= 0x01
            with open(path, "wb") as handle:
                handle.write(bytes(mutated))
            self.assert_rejected_cleanly(path, tiny_kb, tiny_ckb, reference)

    def test_valid_checkpoint_still_loads_after_matrix(
        self, tiny_kb, tiny_ckb, tmp_path
    ):
        # guard against the matrix passing because *nothing* loads
        path, _ = self.write(tiny_ckb, tmp_path, "")
        assert_ckb_equal(tiny_ckb, restore(tiny_kb, load_checkpoint(path)))
