"""Wikipedia Link-based Measure (Eq. 10) tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kb.wlm import wlm_relatedness

link_set = st.frozensets(st.integers(min_value=0, max_value=50), max_size=20)


class TestWlm:
    def test_identical_inlink_sets_fully_related(self):
        links = {1, 2, 3}
        assert wlm_relatedness(links, links, total_pages=1000) == pytest.approx(
            1.0
        )

    def test_disjoint_sets_unrelated(self):
        assert wlm_relatedness({1, 2}, {3, 4}, total_pages=100) == 0.0

    def test_empty_set_unrelated(self):
        assert wlm_relatedness(set(), {1}, total_pages=100) == 0.0
        assert wlm_relatedness({1}, set(), total_pages=100) == 0.0

    def test_more_overlap_more_related(self):
        base = {1, 2, 3, 4}
        low = wlm_relatedness(base, {1, 9, 10, 11}, total_pages=1000)
        high = wlm_relatedness(base, {1, 2, 3, 12}, total_pages=1000)
        assert high > low

    def test_symmetry(self):
        a, b = {1, 2, 3}, {2, 3, 4, 5}
        assert wlm_relatedness(a, b, 500) == wlm_relatedness(b, a, 500)

    def test_tiny_corpus_degenerate(self):
        # smaller set covers the whole corpus: log denominator vanishes
        assert wlm_relatedness({0, 1}, {0, 1}, total_pages=2) == 1.0
        assert wlm_relatedness({0, 1}, {0, 2}, total_pages=2) == 0.0

    def test_single_page_corpus(self):
        assert wlm_relatedness({0}, {0}, total_pages=1) == 0.0

    @given(link_set, link_set, st.integers(min_value=2, max_value=10_000))
    @settings(max_examples=200)
    def test_bounded_and_symmetric(self, a, b, total):
        score = wlm_relatedness(a, b, total)
        assert 0.0 <= score <= 1.0
        assert score == wlm_relatedness(b, a, total)
