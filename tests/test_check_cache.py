"""Incremental analysis cache: reuse, invalidation, degradation."""

from __future__ import annotations

import json

import pytest

from repro.analysis import Baseline, BaselineEntry, run_check
from repro.analysis.cache import (
    ANALYZER_CACHE_VERSION,
    AnalysisCache,
    content_hash,
    rules_signature,
)

_TREE = {
    "pkg/__init__.py": "",
    # leaf: imported by mid, which is imported by top
    "pkg/leaf.py": "def leaf():\n    return 1\n",
    "pkg/mid.py": "from pkg.leaf import leaf\ndef mid():\n    return leaf()\n",
    "pkg/top.py": "from pkg.mid import mid\ndef top():\n    return mid()\n",
    "pkg/island.py": "def island():\n    return 42\n",
}


@pytest.fixture
def tree(tmp_path):
    for relative, source in _TREE.items():
        target = tmp_path / "src" / relative
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
    return tmp_path


def check(tree, **kwargs):
    cache = str(tree / "cache.json")
    return run_check([str(tree / "src")], root=str(tree), cache_path=cache, **kwargs)


class TestReuse:
    def test_cold_then_warm(self, tree):
        cold = check(tree)
        assert cold.cache_enabled
        assert cold.files_reanalyzed == len(_TREE)
        assert cold.files_cached == 0
        warm = check(tree)
        assert warm.files_reanalyzed == 0
        assert warm.files_cached == len(_TREE)

    def test_findings_survive_cache_reuse(self, tree):
        violating = tree / "src" / "pkg" / "bad.py"
        violating.write_text("import random\nrng = random.Random()\n")
        cold = check(tree)
        warm = check(tree)
        assert warm.files_reanalyzed == 0
        assert [f.rule for f in cold.findings] == ["DET-001"]
        assert [f.as_dict() for f in warm.findings] == [
            f.as_dict() for f in cold.findings
        ]

    def test_disabled_without_cache_path(self, tree):
        report = run_check([str(tree / "src")], root=str(tree))
        assert not report.cache_enabled


class TestInvalidation:
    def test_editing_leaf_reanalyzes_transitive_importers(self, tree):
        check(tree)
        leaf = tree / "src" / "pkg" / "leaf.py"
        leaf.write_text("def leaf():\n    return 2\n")
        report = check(tree)
        # leaf itself + mid + top; island and __init__ stay cached
        assert report.files_reanalyzed == 3
        assert report.files_cached == 2

    def test_editing_island_reanalyzes_only_itself(self, tree):
        check(tree)
        island = tree / "src" / "pkg" / "island.py"
        island.write_text("def island():\n    return 43\n")
        report = check(tree)
        assert report.files_reanalyzed == 1
        assert report.files_cached == len(_TREE) - 1

    def test_new_file_is_analyzed_without_invalidating_others(self, tree):
        check(tree)
        extra = tree / "src" / "pkg" / "extra.py"
        extra.write_text("def extra():\n    return 3\n")
        report = check(tree)
        assert report.files_reanalyzed == 1
        assert report.files_cached == len(_TREE)

    def test_deleted_file_is_dropped_from_cache(self, tree):
        check(tree)
        (tree / "src" / "pkg" / "island.py").unlink()
        report = check(tree)
        assert report.files_scanned == len(_TREE) - 1
        document = json.loads((tree / "cache.json").read_text())
        cached_paths = {entry["path"] for entry in document["entries"]}
        assert not any("island" in path for path in cached_paths)

    def test_rules_signature_change_invalidates_everything(self, tree):
        check(tree)
        document = json.loads((tree / "cache.json").read_text())
        document["rules_signature"] = "v0:stale"
        (tree / "cache.json").write_text(json.dumps(document))
        report = check(tree)
        assert report.files_reanalyzed == len(_TREE)

    def test_corrupt_cache_degrades_to_cold_run(self, tree):
        check(tree)
        (tree / "cache.json").write_text("{not json")
        report = check(tree)
        assert report.files_reanalyzed == len(_TREE)
        # and the run repaired the file
        warm = check(tree)
        assert warm.files_reanalyzed == 0


class TestSuppressionNotCached:
    def test_baseline_applies_on_warm_runs(self, tree):
        violating = tree / "src" / "pkg" / "bad.py"
        violating.write_text("import random\nrng = random.Random()\n")
        cold = check(tree)
        assert [f.rule for f in cold.findings] == ["DET-001"]
        baseline = Baseline(
            [
                BaselineEntry(
                    path=cold.findings[0].path,
                    rule="DET-001",
                    line_text="rng = random.Random()",
                    justification="test fixture",
                )
            ]
        )
        warm = check(tree, baseline=baseline)
        assert warm.files_reanalyzed == 0
        assert warm.findings == []
        assert [f.rule for f in warm.suppressed_baseline] == ["DET-001"]


class TestCachePrimitives:
    def test_content_hash_is_content_keyed(self):
        assert content_hash("x = 1\n") == content_hash("x = 1\n")
        assert content_hash("x = 1\n") != content_hash("x = 2\n")

    def test_rules_signature_is_order_insensitive(self):
        assert rules_signature(["B", "A"]) == rules_signature(["A", "B"])
        assert str(ANALYZER_CACHE_VERSION) in rules_signature(["A"])

    def test_save_and_reload_round_trip(self, tmp_path):
        path = str(tmp_path / "cache.json")
        cache = AnalysisCache(path, rules_signature(["DET-001"]))
        current = {"src/pkg/a.py": (content_hash("x = 1\n"), "pkg.a")}
        assert cache.plan(current) == {}
        cache.save()
        reloaded = AnalysisCache(path, rules_signature(["DET-001"]))
        assert reloaded.plan(current) == {}
