"""Property-based tests for the search substrate."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.search.store import TweetStore
from repro.stream.tweet import Tweet

word = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=6)
texts = st.lists(word, min_size=1, max_size=6).map(" ".join)


def make_store(documents):
    return TweetStore(
        Tweet(tweet_id=i, user=0, timestamp=float(i), text=text)
        for i, text in enumerate(documents)
    )


class TestStoreProperties:
    @given(st.lists(texts, min_size=1, max_size=12), st.sets(word, max_size=4))
    @settings(max_examples=150)
    def test_find_by_keywords_matches_scan(self, documents, keywords):
        store = make_store(documents)
        found = {t.tweet_id for t in store.find_by_keywords(keywords, limit=100)}
        expected = {
            i
            for i, text in enumerate(documents)
            if keywords & set(text.split())
        }
        assert found == expected

    @given(st.lists(texts, min_size=1, max_size=10), st.sets(word, min_size=1, max_size=4))
    @settings(max_examples=100)
    def test_overlap_bounded_and_consistent(self, documents, keywords):
        store = make_store(documents)
        for i, text in enumerate(documents):
            overlap = store.keyword_overlap(i, keywords)
            assert 0.0 <= overlap <= 1.0
            exact = len(keywords & set(text.split())) / len(keywords)
            assert overlap == exact

    @given(st.lists(texts, min_size=2, max_size=10))
    @settings(max_examples=80)
    def test_results_sorted_by_overlap_then_freshness(self, documents):
        store = make_store(documents)
        keywords = set(documents[0].split())
        results = store.find_by_keywords(keywords, limit=100)
        scores = [
            (store.keyword_overlap(t.tweet_id, keywords), t.timestamp)
            for t in results
        ]
        for (overlap_a, time_a), (overlap_b, time_b) in zip(scores, scores[1:]):
            assert overlap_a > overlap_b or (
                overlap_a == overlap_b and time_a >= time_b
            )


class TestPruneIntegration:
    def test_linker_consistent_after_prune(self, tiny_ckb):
        """Pruning the complemented KB must leave linking functional and
        recency reflecting only the retained horizon."""
        from repro.config import DAY, LinkerConfig
        from repro.core.linker import SocialTemporalLinker
        from repro.graph.digraph import DiGraph

        graph = DiGraph(13)
        graph.add_edge(0, 10)
        linker = SocialTemporalLinker(
            tiny_ckb, graph,
            config=LinkerConfig(burst_threshold=1, influential_users=2),
        )
        before = linker.link("jordan", user=0, now=8 * DAY)
        assert before.best is not None
        removed = tiny_ckb.prune_before(100 * DAY)  # drop everything
        assert removed > 0
        linker.invalidate_influence_cache()  # external mutation -> flush
        pruned = linker.link("jordan", user=0, now=101 * DAY)
        # influence rankings must reflect the pruned (empty) communities
        assert all(c.interest == 0.0 for c in pruned.ranked)
        linker.confirm_link(0, user=10, timestamp=101 * DAY)  # re-seed
        after = linker.link("jordan", user=0, now=101 * DAY)
        assert after.best is not None
        assert tiny_ckb.count(0) == 1
