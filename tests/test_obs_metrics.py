"""Metrics registry: histograms, shard merging, perf absorption."""

import pytest

from repro.obs.metrics import (
    COUNT_BOUNDARIES,
    LATENCY_BOUNDARIES_S,
    SCORE_BOUNDARIES,
    Histogram,
    MetricsRegistry,
    render_metrics_document,
    validate_metrics_document,
)
from repro.perf import PerfRegistry


class TestHistogram:
    def test_inclusive_upper_bounds(self):
        histogram = Histogram((1.0, 2.0))
        histogram.observe(1.0)  # lands in bucket 0 (<= 1.0)
        histogram.observe(1.5)  # bucket 1
        histogram.observe(2.0)  # bucket 1 (<= 2.0)
        histogram.observe(9.0)  # overflow
        assert histogram.bucket_counts == [1, 2, 1]
        assert histogram.count == 4

    def test_bucket_counts_sum_to_count(self):
        histogram = Histogram(COUNT_BOUNDARIES)
        for value in (0.0, 3.0, 100.0, 7.5):
            histogram.observe(value)
        assert sum(histogram.bucket_counts) == histogram.count == 4

    def test_merge_sums_buckets(self):
        a, b = Histogram((1.0, 2.0)), Histogram((1.0, 2.0))
        a.observe(0.5)
        b.observe(1.5)
        b.observe(5.0)
        a.merge(b)
        assert a.bucket_counts == [1, 1, 1]
        assert a.count == 3

    def test_merge_rejects_different_boundaries(self):
        with pytest.raises(ValueError):
            Histogram((1.0,)).merge(Histogram((2.0,)))

    def test_boundaries_must_increase(self):
        with pytest.raises(ValueError):
            Histogram((2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(())

    def test_dict_roundtrip(self):
        histogram = Histogram(SCORE_BOUNDARIES)
        histogram.observe(0.42)
        clone = Histogram.from_dict(histogram.as_dict())
        assert clone.as_dict() == histogram.as_dict()

    def test_from_dict_rejects_wrong_length(self):
        payload = Histogram((1.0,)).as_dict()
        payload["bucket_counts"] = [0, 0, 0]
        with pytest.raises(ValueError):
            Histogram.from_dict(payload)


class TestRegistry:
    def test_counters(self):
        registry = MetricsRegistry()
        registry.incr("link.requests")
        registry.incr("link.requests", 4)
        assert registry.counter("link.requests") == 5
        assert registry.counter("unknown") == 0

    def test_gauges(self):
        registry = MetricsRegistry()
        registry.gauge("ingest.pending", 12)
        registry.gauge("ingest.pending", 3)
        assert registry.gauge_value("ingest.pending") == 3.0
        assert registry.gauge_value("unknown") is None

    def test_observe_binds_boundaries_on_first_use(self):
        registry = MetricsRegistry()
        registry.observe("scores", 0.5, boundaries=SCORE_BOUNDARIES)
        with pytest.raises(ValueError):
            registry.observe("scores", 0.5, boundaries=COUNT_BOUNDARIES)

    def test_reset(self):
        registry = MetricsRegistry()
        registry.incr("c")
        registry.gauge("g", 1)
        registry.observe("h", 1.0)
        registry.reset()
        assert registry.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }


class TestMerge:
    def test_counters_sum_gauges_max_histograms_merge(self):
        parent, shard = MetricsRegistry(), MetricsRegistry()
        parent.incr("link.requests", 2)
        parent.gauge("pending", 5)
        parent.observe("sizes", 1.0)
        shard.incr("link.requests", 3)
        shard.gauge("pending", 9)
        shard.observe("sizes", 100.0)
        parent.merge(shard.snapshot())
        assert parent.counter("link.requests") == 5
        assert parent.gauge_value("pending") == 9.0
        assert parent.histogram("sizes").count == 2

    def test_merge_into_empty_registry(self):
        shard = MetricsRegistry()
        shard.incr("x")
        shard.gauge("g", 2)
        shard.observe("h", 1.0)
        parent = MetricsRegistry()
        parent.merge(shard.snapshot())
        assert parent.snapshot() == shard.snapshot()

    def test_merge_order_does_not_matter(self):
        shards = []
        for count in (1, 2, 3):
            registry = MetricsRegistry()
            registry.incr("n", count)
            registry.gauge("level", count)
            registry.observe("values", float(count))
            shards.append(registry.snapshot())
        forward, backward = MetricsRegistry(), MetricsRegistry()
        for snap in shards:
            forward.merge(snap)
        for snap in reversed(shards):
            backward.merge(snap)
        assert forward.snapshot() == backward.snapshot()


class TestAbsorbPerf:
    def test_counters_copy_with_parity(self):
        perf = PerfRegistry()
        perf.incr("online_bfs.hit", 3)
        perf.incr("online_bfs.miss", 1)
        registry = MetricsRegistry()
        registry.absorb_perf(perf)
        snapshot = perf.snapshot()
        for name, value in snapshot["counters"].items():
            assert registry.counter("perf." + name) == value

    def test_timer_samples_become_latency_histograms(self):
        perf = PerfRegistry()
        for sample in (0.001, 0.2, 3.0):
            perf.observe("link.interest", sample)
        registry = MetricsRegistry()
        registry.absorb_perf(perf)
        histogram = registry.histogram("perf.link.interest")
        assert histogram.boundaries == LATENCY_BOUNDARIES_S
        assert histogram.count == 3
        assert sum(histogram.bucket_counts) == 3


class TestDocument:
    def test_render_and_validate(self):
        registry = MetricsRegistry()
        registry.incr("link.requests")
        registry.observe("sizes", 2.0)
        perf = PerfRegistry()
        perf.incr("bfs")
        document = render_metrics_document(registry, perf=perf)
        assert validate_metrics_document(document) == []
        assert document["perf"]["counters"] == {"bfs": 1}

    def test_render_without_perf(self):
        document = render_metrics_document(MetricsRegistry())
        assert document["perf"] is None
        assert validate_metrics_document(document) == []

    def test_validator_flags_problems(self):
        assert validate_metrics_document([]) != []
        document = render_metrics_document(MetricsRegistry())
        document["meta"]["schema_version"] = 99
        assert any("schema_version" in p for p in validate_metrics_document(document))

    def test_validator_flags_bucket_sum_mismatch(self):
        registry = MetricsRegistry()
        registry.observe("h", 1.0)
        document = render_metrics_document(registry)
        document["metrics"]["histograms"]["h"]["count"] = 5
        assert any("sum" in p for p in validate_metrics_document(document))
