"""Synthetic Wikipedia builder invariants."""

import pytest

from repro.kb.builder import KBProfile, SyntheticWikipediaBuilder


@pytest.fixture(scope="module")
def synthetic():
    return SyntheticWikipediaBuilder(
        KBProfile(num_topics=5, entities_per_topic=8, ambiguous_groups=10, seed=3)
    ).build()


class TestStructure:
    def test_entity_count(self, synthetic):
        assert synthetic.num_entities == 5 * 8

    def test_every_entity_has_topic(self, synthetic):
        for entity in synthetic.kb.entities():
            assert entity.topic is not None
            assert entity.entity_id in synthetic.topic_entities[entity.topic]

    def test_topic_partition(self, synthetic):
        seen = set()
        for ids in synthetic.topic_entities:
            assert not (seen & set(ids))
            seen.update(ids)
        assert len(seen) == synthetic.num_entities

    def test_descriptions_non_empty(self, synthetic):
        for entity in synthetic.kb.entities():
            assert synthetic.kb.description(entity.entity_id)


class TestAmbiguity:
    def test_ambiguous_surfaces_span_topics(self, synthetic):
        for surface, members in synthetic.ambiguous_surfaces.items():
            topics = {synthetic.topic_of(e) for e in members}
            assert len(topics) == len(members), surface  # all distinct topics
            assert set(synthetic.kb.candidates(surface)) >= set(members)

    def test_requested_group_count(self, synthetic):
        assert len(synthetic.ambiguous_surfaces) == 10

    def test_ambiguity_bounds_validated(self):
        with pytest.raises(ValueError):
            KBProfile(num_topics=2, ambiguity=3)
        with pytest.raises(ValueError):
            KBProfile(ambiguity=1)


class TestHyperlinks:
    def test_intra_topic_relatedness_dominates(self, synthetic):
        kb = synthetic.kb
        intra = []
        inter = []
        for topic, ids in enumerate(synthetic.topic_entities):
            intra.append(kb.relatedness(ids[0], ids[1]))
            other = synthetic.topic_entities[(topic + 1) % len(synthetic.topic_entities)]
            inter.append(kb.relatedness(ids[0], other[0]))
        assert sum(intra) / len(intra) > sum(inter) / len(inter)

    def test_inlinks_exist(self, synthetic):
        linked = sum(
            1 for e in synthetic.kb.entities() if synthetic.kb.inlinks(e.entity_id)
        )
        assert linked > synthetic.num_entities * 0.8


class TestDeterminism:
    def test_same_seed_same_kb(self):
        profile = KBProfile(
            num_topics=3, entities_per_topic=4, ambiguous_groups=3, ambiguity=2, seed=9
        )
        first = SyntheticWikipediaBuilder(profile).build()
        second = SyntheticWikipediaBuilder(profile).build()
        assert [e.title for e in first.kb.entities()] == [
            e.title for e in second.kb.entities()
        ]
        assert first.ambiguous_surfaces == second.ambiguous_surfaces
        assert first.common_vocab == second.common_vocab

    def test_different_seed_differs(self):
        base = KBProfile(
            num_topics=3, entities_per_topic=4, ambiguous_groups=3, ambiguity=2, seed=1
        )
        other = KBProfile(
            num_topics=3, entities_per_topic=4, ambiguous_groups=3, ambiguity=2, seed=2
        )
        first = SyntheticWikipediaBuilder(base).build()
        second = SyntheticWikipediaBuilder(other).build()
        assert [e.title for e in first.kb.entities()] != [
            e.title for e in second.kb.entities()
        ]
