"""SymSpell-style deletion index tests, cross-checked vs the segment index."""

import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kb.deletion_index import DeletionIndex, deletion_neighborhood
from repro.kb.surface_index import SegmentIndex
from repro.text.edit_distance import within_edit_distance

words = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=8)


class TestDeletionNeighborhood:
    def test_zero_deletions(self):
        assert deletion_neighborhood("abc", 0) == {"abc"}

    def test_one_deletion(self):
        assert deletion_neighborhood("abc", 1) == {"abc", "bc", "ac", "ab"}

    def test_covers_empty_string(self):
        assert "" in deletion_neighborhood("ab", 2)

    def test_size_grows_with_k(self):
        assert len(deletion_neighborhood("abcdef", 2)) > len(
            deletion_neighborhood("abcdef", 1)
        )


class TestLookup:
    def test_substitution_found(self):
        index = DeletionIndex(["jordan"], max_edits=1)
        assert index.lookup("jordon") == ["jordan"]

    def test_insertion_and_deletion_found(self):
        index = DeletionIndex(["jordan"], max_edits=1)
        assert index.lookup("jordaan") == ["jordan"]
        assert index.lookup("jordn") == ["jordan"]

    def test_beyond_k_missed(self):
        index = DeletionIndex(["jordan"], max_edits=1)
        assert index.lookup("jrdn") == []

    def test_exact_match(self):
        index = DeletionIndex(["nba", "icml"], max_edits=1)
        assert "nba" in index.lookup("nba")

    def test_empty_query(self):
        assert DeletionIndex(["abc"], max_edits=1).lookup("") == []

    def test_idempotent_add(self):
        index = DeletionIndex([], max_edits=1)
        index.add("bulls")
        index.add("bulls")
        assert len(index) == 1

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            DeletionIndex([], max_edits=-1)

    @given(
        st.lists(words, min_size=1, max_size=12, unique=True),
        words,
        st.integers(min_value=0, max_value=2),
    )
    @settings(max_examples=150, deadline=None)
    def test_matches_brute_force(self, surfaces, query, k):
        index = DeletionIndex(surfaces, max_edits=k)
        expected = {s for s in surfaces if within_edit_distance(query, s, k)}
        assert set(index.lookup(query)) == expected

    @given(
        st.lists(words, min_size=1, max_size=12, unique=True),
        words,
    )
    @settings(max_examples=100, deadline=None)
    def test_agrees_with_segment_index(self, surfaces, query):
        deletion = DeletionIndex(surfaces, max_edits=1)
        segment = SegmentIndex(surfaces, max_edits=1)
        assert set(deletion.lookup(query)) == set(segment.lookup(query))


class TestTradeoff:
    def test_deletion_index_is_larger(self):
        surfaces = [f"entity{string.ascii_lowercase[i % 26]}{i}" for i in range(200)]
        deletion = DeletionIndex(surfaces, max_edits=1)
        # one deletion neighborhood per surface ~ len(surface) entries
        assert deletion.num_index_entries() > 5 * len(surfaces)
