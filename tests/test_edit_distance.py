"""Levenshtein distance tests, including hypothesis properties."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.text.edit_distance import edit_distance, edit_similarity, within_edit_distance

short_text = st.text(alphabet=string.ascii_lowercase + " ", max_size=12)


class TestEditDistance:
    def test_identical(self):
        assert edit_distance("jordan", "jordan") == 0

    def test_single_substitution(self):
        assert edit_distance("jordan", "jordon") == 1

    def test_insertion_and_deletion(self):
        assert edit_distance("jordan", "jordans") == 1
        assert edit_distance("jordan", "jordn") == 1

    def test_empty_strings(self):
        assert edit_distance("", "") == 0
        assert edit_distance("", "abc") == 3
        assert edit_distance("abc", "") == 3

    def test_completely_different(self):
        assert edit_distance("abc", "xyz") == 3

    def test_classic_example(self):
        assert edit_distance("kitten", "sitting") == 3


class TestWithinEditDistance:
    def test_matches_exact_distance_semantics(self):
        assert within_edit_distance("jordan", "jordon", 1)
        assert not within_edit_distance("jordan", "jordon", 0)

    def test_length_gap_prunes(self):
        assert not within_edit_distance("a", "abcdef", 2)

    def test_negative_threshold(self):
        assert not within_edit_distance("a", "a", -1)

    def test_zero_threshold_is_equality(self):
        assert within_edit_distance("same", "same", 0)
        assert not within_edit_distance("same", "sane", 0)

    @given(short_text, short_text, st.integers(min_value=0, max_value=4))
    @settings(max_examples=300)
    def test_agrees_with_full_dp(self, a, b, k):
        assert within_edit_distance(a, b, k) == (edit_distance(a, b) <= k)

    @given(short_text, short_text)
    @settings(max_examples=200)
    def test_symmetry(self, a, b):
        assert edit_distance(a, b) == edit_distance(b, a)

    @given(short_text, short_text, short_text)
    @settings(max_examples=150)
    def test_triangle_inequality(self, a, b, c):
        assert edit_distance(a, c) <= edit_distance(a, b) + edit_distance(b, c)


class TestEditSimilarity:
    def test_identical_is_one(self):
        assert edit_similarity("abc", "abc") == 1.0

    def test_empty_pair_is_one(self):
        assert edit_similarity("", "") == 1.0

    def test_disjoint_is_zero(self):
        assert edit_similarity("abc", "xyz") == 0.0

    @given(short_text, short_text)
    @settings(max_examples=150)
    def test_bounded(self, a, b):
        assert 0.0 <= edit_similarity(a, b) <= 1.0
