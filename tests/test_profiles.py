"""World preset tests."""

from repro.kb.builder import KBProfile
from repro.stream.generator import StreamProfile
from repro.stream.profiles import (
    STARVED_KB_PROFILE,
    STARVED_PROFILE,
    TWITTER_PROFILE,
    WEIBO_PROFILE,
    quick_profiles,
)


class TestPresets:
    def test_twitter_is_default(self):
        assert TWITTER_PROFILE == StreamProfile()

    def test_weibo_is_denser(self):
        assert WEIBO_PROFILE.extra_mention_rate > TWITTER_PROFILE.extra_mention_rate
        assert WEIBO_PROFILE.activity_log_mean > TWITTER_PROFILE.activity_log_mean
        assert WEIBO_PROFILE.seed != TWITTER_PROFILE.seed

    def test_starved_has_more_entities_thinner_stream(self):
        assert (
            STARVED_KB_PROFILE.entities_per_topic
            > KBProfile().entities_per_topic
        )
        assert STARVED_PROFILE.activity_log_mean < TWITTER_PROFILE.activity_log_mean

    def test_quick_profiles_are_small_and_seeded(self):
        kb_a, stream_a = quick_profiles(seed=1)
        kb_b, stream_b = quick_profiles(seed=1)
        kb_c, _ = quick_profiles(seed=2)
        assert kb_a == kb_b
        assert stream_a == stream_b
        assert kb_a != kb_c
        assert stream_a.num_users < TWITTER_PROFILE.num_users
        assert kb_a.num_topics * kb_a.entities_per_topic < 50

    def test_presets_are_valid_profiles(self):
        # dataclass validation runs in __post_init__; construction suffices
        for profile in (TWITTER_PROFILE, WEIBO_PROFILE, STARVED_PROFILE):
            assert profile.num_users >= 2
        assert STARVED_KB_PROFILE.ambiguity <= STARVED_KB_PROFILE.num_topics
