"""Property-based tests over core invariants (hypothesis).

These complement the per-module unit tests with randomized structure:
knowledgebases with arbitrary link patterns, random score inputs, random
predictions — the invariants must hold for all of them.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import LinkerConfig
from repro.core.influence import entropy_influence, tfidf_influence, top_influential_users
from repro.core.popularity import popularity_scores
from repro.core.recency import sliding_window_recency
from repro.core.scoring import combine_scores
from repro.eval.metrics import mention_and_tweet_accuracy
from repro.kb.complemented import ComplementedKnowledgebase
from repro.kb.knowledgebase import Knowledgebase
from repro.stream.tweet import MentionSpan, Tweet

# ---------------------------------------------------------------------- #
# strategies
# ---------------------------------------------------------------------- #
links_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=4),   # entity
        st.integers(min_value=0, max_value=6),   # user
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),  # time
    ),
    max_size=60,
)

share_strategy = st.dictionaries(
    st.integers(min_value=0, max_value=9),
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    max_size=8,
)


def build_ckb(links):
    kb = Knowledgebase()
    for index in range(5):
        kb.add_entity(f"entity {index}")
    ckb = ComplementedKnowledgebase(kb)
    for entity, user, timestamp in links:
        ckb.link_tweet(entity, user, timestamp)
    return ckb


# ---------------------------------------------------------------------- #
# popularity (Eq. 2)
# ---------------------------------------------------------------------- #
class TestPopularityProperties:
    @given(links_strategy)
    @settings(max_examples=100)
    def test_shares_normalized_or_zero(self, links):
        ckb = build_ckb(links)
        scores = popularity_scores(ckb, [0, 1, 2, 3, 4])
        total = sum(scores.values())
        assert total == pytest.approx(1.0) or total == 0.0
        assert all(0.0 <= v <= 1.0 for v in scores.values())

    @given(links_strategy)
    @settings(max_examples=100)
    def test_monotone_in_counts(self, links):
        ckb = build_ckb(links)
        scores = popularity_scores(ckb, [0, 1, 2, 3, 4])
        counts = {e: ckb.count(e) for e in range(5)}
        for a in range(5):
            for b in range(5):
                if counts[a] > counts[b]:
                    assert scores[a] >= scores[b]


# ---------------------------------------------------------------------- #
# recency (Eq. 9)
# ---------------------------------------------------------------------- #
class TestRecencyProperties:
    @given(
        links_strategy,
        st.floats(min_value=1.0, max_value=200.0, allow_nan=False),
        st.floats(min_value=0.1, max_value=50.0, allow_nan=False),
        st.integers(min_value=0, max_value=5),
    )
    @settings(max_examples=100)
    def test_bounded_and_gated(self, links, now, window, threshold):
        ckb = build_ckb(links)
        scores = sliding_window_recency(ckb, [0, 1, 2, 3, 4], now, window, threshold)
        assert all(0.0 <= v <= 1.0 for v in scores.values())
        for entity, value in scores.items():
            if ckb.recent_count(entity, now, window) < threshold:
                assert value == 0.0

    @given(links_strategy, st.floats(min_value=1.0, max_value=200.0))
    @settings(max_examples=60)
    def test_wider_window_never_sees_fewer_tweets(self, links, now):
        ckb = build_ckb(links)
        for entity in range(5):
            narrow = ckb.recent_count(entity, now, 5.0)
            wide = ckb.recent_count(entity, now, 50.0)
            assert wide >= narrow


# ---------------------------------------------------------------------- #
# influence (Eq. 6 / 7)
# ---------------------------------------------------------------------- #
class TestInfluenceProperties:
    @given(links_strategy)
    @settings(max_examples=100)
    def test_non_negative_and_members_only(self, links):
        ckb = build_ckb(links)
        candidates = (0, 1, 2)
        for user in range(7):
            for entity in candidates:
                tfidf = tfidf_influence(ckb, user, entity, candidates)
                entropy = entropy_influence(ckb, user, entity, candidates)
                assert tfidf >= 0.0
                assert entropy >= 0.0
                if user not in ckb.community(entity):
                    assert tfidf == 0.0
                    assert entropy == 0.0

    @given(links_strategy)
    @settings(max_examples=100)
    def test_entropy_bounded_by_pure_share(self, links):
        # entropy influence is at most share / smoothing (entropy >= 0)
        ckb = build_ckb(links)
        candidates = (0, 1, 2, 3, 4)
        for user in range(7):
            for entity in candidates:
                count = ckb.count(entity)
                if count == 0:
                    continue
                share = ckb.user_count(entity, user) / count
                assert entropy_influence(ckb, user, entity, candidates) <= (
                    share / 2.0 + 1e-12
                )

    @given(links_strategy, st.integers(min_value=1, max_value=5))
    @settings(max_examples=100)
    def test_topk_sorted_and_within_community(self, links, k):
        ckb = build_ckb(links)
        candidates = (0, 1, 2)
        top = top_influential_users(ckb, 0, candidates, k=k)
        assert len(top) <= k
        assert set(top) <= ckb.community(0)
        scores = [entropy_influence(ckb, u, 0, candidates) for u in top]
        assert scores == sorted(scores, reverse=True)


# ---------------------------------------------------------------------- #
# score combination (Eq. 1)
# ---------------------------------------------------------------------- #
class TestCombineProperties:
    @given(share_strategy, share_strategy, share_strategy)
    @settings(max_examples=150)
    def test_scores_bounded_and_sorted(self, interest, recency, popularity):
        candidates = sorted(set(interest) | set(recency) | set(popularity))
        ranked = combine_scores(
            candidates, interest, recency, popularity, LinkerConfig()
        )
        scores = [c.score for c in ranked]
        assert scores == sorted(scores, reverse=True)
        assert all(0.0 <= s <= 1.0 + 1e-9 for s in scores)

    @given(share_strategy, share_strategy, share_strategy)
    @settings(max_examples=100)
    def test_candidate_order_irrelevant(self, interest, recency, popularity):
        candidates = sorted(set(interest) | set(recency) | set(popularity))
        forward = combine_scores(
            candidates, interest, recency, popularity, LinkerConfig()
        )
        backward = combine_scores(
            list(reversed(candidates)), interest, recency, popularity, LinkerConfig()
        )
        assert forward == backward

    @given(share_strategy)
    @settings(max_examples=100)
    def test_single_feature_weights_recover_inputs(self, interest):
        candidates = sorted(interest)
        ranked = combine_scores(
            candidates, interest, {}, {}, LinkerConfig(alpha=1, beta=0, gamma=0)
        )
        for candidate in ranked:
            assert candidate.score == pytest.approx(interest[candidate.entity_id])


# ---------------------------------------------------------------------- #
# metrics
# ---------------------------------------------------------------------- #
predictions_strategy = st.lists(
    st.lists(st.one_of(st.none(), st.integers(0, 4)), min_size=1, max_size=3),
    min_size=1,
    max_size=15,
)


class TestMetricsProperties:
    @given(predictions_strategy, st.randoms(use_true_random=False))
    @settings(max_examples=100)
    def test_accuracies_bounded_and_consistent(self, guesses, rng):
        """Both metrics stay in [0, 1]; on uniform single-mention tweets
        they coincide.  (Tweet ≤ mention accuracy is *not* a theorem for
        mixed tweet lengths — a correct 1-mention tweet plus an all-wrong
        2-mention tweet gives 1/2 vs 1/3 — it only holds empirically.)"""
        tweets = []
        predictions = {}
        for tweet_id, guess_row in enumerate(guesses):
            truths = [rng.randrange(5) for _ in guess_row]
            tweets.append(
                Tweet(
                    tweet_id=tweet_id,
                    user=0,
                    timestamp=float(tweet_id),
                    text="m",
                    mentions=tuple(MentionSpan("m", true_entity=t) for t in truths),
                )
            )
            predictions[tweet_id] = list(guess_row)
        report = mention_and_tweet_accuracy(tweets, predictions)
        assert 0.0 <= report.tweet_accuracy <= 1.0
        assert 0.0 <= report.mention_accuracy <= 1.0
        singles = [t for t in tweets if len(t.mentions) == 1]
        if len(singles) == len(tweets):
            assert report.tweet_accuracy == pytest.approx(report.mention_accuracy)

    @given(predictions_strategy)
    @settings(max_examples=50)
    def test_perfect_predictions_score_one(self, guesses):
        tweets = []
        predictions = {}
        for tweet_id, guess_row in enumerate(guesses):
            truths = [abs(hash((tweet_id, i))) % 5 for i in range(len(guess_row))]
            tweets.append(
                Tweet(
                    tweet_id=tweet_id,
                    user=0,
                    timestamp=0.0,
                    text="m",
                    mentions=tuple(MentionSpan("m", true_entity=t) for t in truths),
                )
            )
            predictions[tweet_id] = truths
        report = mention_and_tweet_accuracy(tweets, predictions)
        assert report.mention_accuracy == 1.0
        assert report.tweet_accuracy == 1.0


# ---------------------------------------------------------------------- #
# one-pass reachability vs the per-target DAG walk (Eq. 4)
# ---------------------------------------------------------------------- #
edges_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=11),
        st.integers(min_value=0, max_value=11),
    ).filter(lambda edge: edge[0] != edge[1]),
    max_size=60,
)


class TestOnePassReachability:
    @given(
        edges=edges_strategy,
        source=st.integers(min_value=0, max_value=11),
        max_hops=st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=80, deadline=None)
    def test_one_pass_matches_per_target(self, edges, source, max_hops):
        from repro.graph.digraph import DiGraph
        from repro.graph.reachability import (
            weighted_reachability,
            weighted_reachability_from,
            weighted_reachability_from_per_target,
        )

        graph = DiGraph.from_edges(12, edges)
        one_pass = weighted_reachability_from(graph, source, max_hops=max_hops)
        per_target = weighted_reachability_from_per_target(
            graph, source, max_hops=max_hops
        )
        assert set(one_pass) == set(per_target)
        for target, score in one_pass.items():
            assert score == pytest.approx(per_target[target], rel=1e-12, abs=0.0)
            assert score == pytest.approx(
                weighted_reachability(graph, source, target, max_hops=max_hops),
                rel=1e-12,
                abs=0.0,
            )

    @given(edges=edges_strategy, source=st.integers(min_value=0, max_value=11))
    @settings(max_examples=50, deadline=None)
    def test_one_pass_scores_well_formed(self, edges, source):
        from repro.graph.digraph import DiGraph
        from repro.graph.reachability import weighted_reachability_from

        graph = DiGraph.from_edges(12, edges)
        scores = weighted_reachability_from(graph, source)
        assert source not in scores
        for target in graph.out_neighbors(source):
            assert scores[target] == 1.0  # direct followees (d=1, F_uv=F_u)
        for score in scores.values():
            assert 0.0 < score <= 1.0
