"""World validation ("linting") tests — DESIGN.md §2's claims, measured."""

import pytest

from repro.stream.validation import gini, validate_world


class TestGini:
    def test_equal_distribution_is_zero(self):
        assert gini([5, 5, 5, 5]) == pytest.approx(0.0, abs=1e-9)

    def test_maximal_concentration(self):
        value = gini([0, 0, 0, 100])
        assert value == pytest.approx(0.75, abs=1e-9)  # (n-1)/n for n=4

    def test_empty_and_zero(self):
        assert gini([]) == 0.0
        assert gini([0, 0]) == 0.0

    def test_monotone_in_skew(self):
        assert gini([1, 1, 1, 97]) > gini([20, 25, 25, 30])


class TestValidateWorld:
    @pytest.fixture(scope="class")
    def report(self, small_world):
        return validate_world(small_world)

    def test_counts(self, report, small_world):
        assert report.num_users == small_world.num_users
        assert report.num_tweets == len(small_world.tweets)

    def test_mention_density_like_paper(self, report):
        # the paper's Dtest carries 1.36 mentions per tweet
        assert 1.0 <= report.mentions_per_tweet <= 2.0

    def test_ambiguity_pressure(self, report):
        # most planted mentions must be genuinely ambiguous
        assert report.ambiguous_mention_share > 0.4

    def test_heavy_tailed_activity(self, report):
        # lognormal activity concentrates tweets in few users
        assert report.activity_gini > 0.4

    def test_information_seekers_present(self, report):
        # the isolation knob leaves a passive population
        assert 0.1 < report.isolation_share < 0.6

    def test_homophily(self, report):
        # same-topic follows far above the random baseline
        assert report.homophily_lift > 1.5

    def test_bursts_shape_the_stream(self, report):
        # inside an event the topic's share multiplies
        assert report.burst_lift > 1.5

    def test_mentions_resolvable_modulo_typos(self, report, small_world):
        typo_rate = small_world.stream_profile.typo_rate
        assert report.resolvable_share > 1.0 - 3 * typo_rate

    def test_as_rows_render(self, report):
        rows = report.as_rows()
        assert {"property", "value"} == set(rows[0])
        assert any(r["property"] == "homophily_lift" for r in rows)
