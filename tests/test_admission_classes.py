"""Per-tenant admission classes: isolation, accounting, back-compat.

The classed controller partitions in-flight work into named classes
(``gold``/``bronze``), each an independent bounded controller — so a
bronze tenant saturating its class can never shed a gold tenant's
request.  The integration half drives a real :class:`ServeApp` with
``defer_release=True`` so slots are held across requests and the
isolation boundary is observable from status codes alone.
"""

import json

import pytest

from repro.errors import OverloadedError
from repro.serve.admission import (
    DEFAULT_CLASS,
    AdmissionClass,
    AdmissionController,
    ClassedAdmissionController,
)
from repro.serve.handlers import ServeApp
from repro.serve.tenants import TenantSpec, build_tenant_registry
from repro.testing.faults import FakeClock


class TestAdmissionClass:
    def test_defaults(self):
        spec = AdmissionClass(name="gold")
        assert (spec.capacity, spec.queue_limit) == (8, 16)

    @pytest.mark.parametrize("name", ["", "a,b", "a=b", "a:b", "a/b"])
    def test_separator_names_rejected(self, name):
        with pytest.raises(ValueError):
            AdmissionClass(name=name)


class TestClassedAdmissionController:
    def build(self):
        return ClassedAdmissionController([
            AdmissionClass(name="gold", capacity=2, queue_limit=1),
            AdmissionClass(name="bronze", capacity=1, queue_limit=0),
        ])

    def test_empty_config_gets_default_class(self):
        admission = ClassedAdmissionController()
        assert admission.names() == [DEFAULT_CLASS]
        admission.admit()  # default class, default args
        assert admission.pending == 1
        admission.release()
        assert admission.pending == 0

    def test_duplicate_class_rejected(self):
        with pytest.raises(ValueError):
            ClassedAdmissionController(
                [AdmissionClass(name="gold"), AdmissionClass(name="gold")]
            )

    def test_classes_shed_independently(self):
        admission = self.build()
        admission.admit("bronze")
        with pytest.raises(OverloadedError) as excinfo:
            admission.admit("bronze")
        assert "bronze" in str(excinfo.value)
        # gold still has 2 slots + 1 queue position
        for _ in range(3):
            admission.admit("gold")
        with pytest.raises(OverloadedError) as excinfo:
            admission.admit("gold")
        assert "gold" in str(excinfo.value)

    def test_release_returns_to_named_class(self):
        admission = self.build()
        admission.admit("bronze")
        admission.release("bronze")
        admission.admit("bronze")  # does not raise
        assert admission.controller("bronze").pending == 1
        assert admission.controller("gold").pending == 0

    def test_unknown_class_is_a_wiring_bug(self):
        admission = self.build()
        with pytest.raises(ValueError, match="unknown admission class"):
            admission.admit("platinum")
        with pytest.raises(ValueError, match="unknown admission class"):
            admission.release("platinum")

    def test_pending_sums_across_classes(self):
        admission = self.build()
        admission.admit("gold")
        admission.admit("bronze")
        assert admission.pending == 2

    def test_snapshot_aggregates_and_breaks_down(self):
        admission = self.build()
        admission.admit("gold")
        admission.admit("bronze")
        with pytest.raises(OverloadedError):
            admission.admit("bronze")
        snap = admission.snapshot()
        assert snap["capacity"] == 3
        assert snap["queue_limit"] == 1
        assert snap["pending"] == 2
        assert snap["shed"] == 1
        assert set(snap["classes"]) == {"gold", "bronze"}
        assert snap["classes"]["bronze"]["shed"] == 1
        assert snap["classes"]["gold"]["shed"] == 0
        assert json.loads(json.dumps(snap, sort_keys=True)) == snap

    def test_single_wraps_existing_controller(self):
        controller = AdmissionController(capacity=1, queue_limit=0)
        admission = ClassedAdmissionController.single(controller)
        assert admission.names() == [DEFAULT_CLASS]
        admission.admit()
        assert controller.pending == 1
        with pytest.raises(OverloadedError):
            admission.admit()


class TestServeAppClassIsolation:
    @pytest.fixture
    def classed_app(self, small_world):
        clock = FakeClock()
        registry, _ = build_tenant_registry(
            small_world,
            [
                TenantSpec(name="alpha", rate=1000.0, burst=1000.0,
                           deadline_ms=None, admission_class="gold"),
                TenantSpec(name="beta", rate=1000.0, burst=1000.0,
                           deadline_ms=None, admission_class="bronze"),
            ],
            clock=clock,
        )
        admission = ClassedAdmissionController([
            AdmissionClass(name="gold", capacity=2, queue_limit=0),
            AdmissionClass(name="bronze", capacity=1, queue_limit=0),
        ])
        # defer_release: every 200 holds its slot, so saturation is
        # driven from the test body one request at a time
        return ServeApp(
            registry, admission=admission, clock=clock, defer_release=True
        )

    @staticmethod
    def link(app, tenant):
        body = json.dumps(
            {"tenant": tenant, "surface": "e", "user": 0, "now": 1.0}
        ).encode()
        return app.handle("POST", "/v1/link", body)

    def test_bronze_saturation_never_sheds_gold(self, classed_app):
        app = classed_app
        status, _ = self.link(app, "beta")
        assert status == 200
        status, doc = self.link(app, "beta")
        assert (status, doc["error"]["type"]) == (503, "shed")
        assert "bronze" in doc["error"]["message"]
        # gold tenant unaffected by the saturated bronze class
        for _ in range(2):
            status, _ = self.link(app, "alpha")
            assert status == 200
        status, doc = self.link(app, "alpha")
        assert (status, doc["error"]["type"]) == (503, "shed")
        assert "gold" in doc["error"]["message"]

    def test_per_class_shed_counts_in_healthz(self, classed_app):
        app = classed_app
        self.link(app, "beta")
        self.link(app, "beta")  # shed
        _, doc = app.handle("GET", "/healthz", None)
        classes = doc["admission"]["classes"]
        assert classes["bronze"]["shed"] == 1
        assert classes["gold"]["shed"] == 0
        tenants = {t["name"]: t for t in doc["tenants"]}
        assert tenants["alpha"]["admission_class"] == "gold"
        assert tenants["beta"]["admission_class"] == "bronze"

    def test_unknown_tenant_class_rejected_at_boot(self, small_world):
        clock = FakeClock()
        registry, _ = build_tenant_registry(
            small_world,
            [TenantSpec(name="alpha", rate=10.0, burst=10.0,
                        deadline_ms=None, admission_class="platinum")],
            clock=clock,
        )
        with pytest.raises(ValueError, match="unknown admission class"):
            ServeApp(
                registry,
                admission=ClassedAdmissionController(
                    [AdmissionClass(name="gold")]
                ),
                clock=clock,
            )

    def test_tenant_spec_rejects_separator_names(self):
        for bad in ("a,b", "a:b", "a=b", "a/b", ""):
            with pytest.raises(ValueError):
                TenantSpec(name=bad)
        with pytest.raises(ValueError):
            TenantSpec(name="ok", admission_class="")
