"""tf-idf vectorizer and cosine similarity tests."""

import pytest

from repro.text.similarity import CosineSimilarity, TfIdfVectorizer, cosine


class TestCosine:
    def test_identical_vectors(self):
        v = {"a": 1.0, "b": 2.0}
        assert cosine(v, v) == pytest.approx(1.0)

    def test_orthogonal_vectors(self):
        assert cosine({"a": 1.0}, {"b": 1.0}) == 0.0

    def test_empty_vector(self):
        assert cosine({}, {"a": 1.0}) == 0.0
        assert cosine({"a": 1.0}, {}) == 0.0

    def test_scale_invariance(self):
        a = {"x": 1.0, "y": 3.0}
        b = {"x": 2.0, "y": 6.0}
        assert cosine(a, b) == pytest.approx(1.0)

    def test_partial_overlap_between_zero_and_one(self):
        score = cosine({"a": 1.0, "b": 1.0}, {"b": 1.0, "c": 1.0})
        assert 0.0 < score < 1.0


class TestTfIdfVectorizer:
    def test_vectorize_before_fit_raises(self):
        with pytest.raises(ValueError):
            TfIdfVectorizer().vectorize(["a"])

    def test_rare_terms_weigh_more(self):
        vec = TfIdfVectorizer().fit([["common", "rare"], ["common"], ["common"]])
        weights = vec.vectorize(["common", "rare"])
        assert weights["rare"] > weights["common"]

    def test_unseen_terms_get_max_idf(self):
        vec = TfIdfVectorizer().fit([["a"], ["a", "b"]])
        weights = vec.vectorize(["zzz", "a"])
        assert weights["zzz"] > weights["a"]

    def test_empty_document_vectorizes_empty(self):
        vec = TfIdfVectorizer().fit([["a"]])
        assert vec.vectorize([]) == {}

    def test_similarity_of_same_topic_docs_higher(self):
        corpus = [
            ["nba", "bulls", "dunk", "game"],
            ["icml", "model", "inference", "paper"],
        ]
        vec = TfIdfVectorizer().fit(corpus)
        same = vec.similarity(["nba", "game"], corpus[0])
        cross = vec.similarity(["nba", "game"], corpus[1])
        assert same > cross

    def test_vocabulary_size(self):
        vec = TfIdfVectorizer().fit([["a", "b"], ["b", "c"]])
        assert vec.vocabulary_size == 3


class TestCosineSimilarity:
    def test_cached_reference_scoring(self):
        vec = TfIdfVectorizer().fit([["nba", "bulls"], ["icml", "model"]])
        sim = CosineSimilarity(vec)
        sim.add_document(0, ["nba", "bulls"])
        sim.add_document(1, ["icml", "model"])
        assert sim.score(0, ["nba"]) > sim.score(1, ["nba"])

    def test_unknown_key_scores_zero(self):
        vec = TfIdfVectorizer().fit([["a"]])
        sim = CosineSimilarity(vec)
        assert sim.score(42, ["a"]) == 0.0
