"""BFS / shortest-path-DAG traversal tests."""

from repro.graph.digraph import DiGraph
from repro.graph.traversal import (
    bfs_distances,
    bfs_reachable,
    followees_on_shortest_paths,
    shortest_path_dag,
)


class TestBfsDistances:
    def test_chain_distances(self, chain_graph):
        assert bfs_distances(chain_graph, 0, max_hops=10) == {1: 1, 2: 2, 3: 3, 4: 4}

    def test_hop_horizon_truncates(self, chain_graph):
        assert bfs_distances(chain_graph, 0, max_hops=2) == {1: 1, 2: 2}

    def test_source_not_included(self, diamond_graph):
        assert 0 not in bfs_distances(diamond_graph, 0, max_hops=4)

    def test_unreachable_nodes_absent(self):
        graph = DiGraph.from_edges(3, [(0, 1)])
        assert 2 not in bfs_distances(graph, 0, max_hops=5)

    def test_directionality(self, chain_graph):
        assert bfs_distances(chain_graph, 4, max_hops=5) == {}


class TestShortestPathDag:
    def test_diamond_has_two_predecessors(self, diamond_graph):
        dist, preds = shortest_path_dag(diamond_graph, 0, max_hops=4)
        assert dist[4] == 2
        assert sorted(preds[4]) == [1, 2]

    def test_chain_single_predecessors(self, chain_graph):
        _, preds = shortest_path_dag(chain_graph, 0, max_hops=5)
        assert preds[3] == [2]

    def test_only_shortest_predecessors_recorded(self):
        # 0->1->3 and 0->2->4->3: node 3 reachable at distance 2 and 3;
        # only the distance-2 predecessor counts.
        graph = DiGraph.from_edges(5, [(0, 1), (1, 3), (0, 2), (2, 4), (4, 3)])
        dist, preds = shortest_path_dag(graph, 0, max_hops=4)
        assert dist[3] == 2
        assert preds[3] == [1]


class TestFolloweesOnShortestPaths:
    def test_diamond(self, diamond_graph):
        dist, preds = shortest_path_dag(diamond_graph, 0, max_hops=4)
        followees = followees_on_shortest_paths(diamond_graph, 0, dist, preds, 4)
        assert followees == {1, 2}

    def test_direct_edge_target(self, diamond_graph):
        dist, preds = shortest_path_dag(diamond_graph, 0, max_hops=4)
        assert followees_on_shortest_paths(diamond_graph, 0, dist, preds, 1) == {1}

    def test_unreachable_target(self, diamond_graph):
        dist, preds = shortest_path_dag(diamond_graph, 0, max_hops=4)
        # node 3 has no outgoing edges; 3 -> anything is unreachable
        dist3, preds3 = shortest_path_dag(diamond_graph, 3, max_hops=4)
        assert followees_on_shortest_paths(diamond_graph, 3, dist3, preds3, 4) == set()

    def test_three_hop_path(self):
        # 0 -> 1 -> 2 -> 3 plus shortcut 0 -> 4 -> 3 (also length... 2 hops via 4)
        graph = DiGraph.from_edges(5, [(0, 1), (1, 2), (2, 3), (0, 4), (4, 3)])
        dist, preds = shortest_path_dag(graph, 0, max_hops=4)
        assert dist[3] == 2
        followees = followees_on_shortest_paths(graph, 0, dist, preds, 3)
        assert followees == {4}


class TestBfsReachable:
    def test_unbounded_default(self, chain_graph):
        assert bfs_reachable(chain_graph, 0) == {1, 2, 3, 4}

    def test_bounded(self, chain_graph):
        assert bfs_reachable(chain_graph, 0, max_hops=1) == {1}
